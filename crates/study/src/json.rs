//! The workspace's hand-rolled JSON subset: a renderer and a strict
//! mini parser shared by the run manifest ([`crate::Manifest`]) and
//! the `edmac-serve` wire protocol.
//!
//! The repo vendors no serde, so everything that speaks JSON — the
//! resumable manifest, the serve request/response lines, the shared
//! stats schema — goes through this module. Two properties are
//! load-bearing:
//!
//! * **Numbers stay raw tokens.** [`Json::Num`] holds the literal
//!   token text, so a `u64` seed beyond f64's 2^53 exactness and a
//!   shortest-round-trip float (`{:?}`) both survive
//!   parse-render-parse byte for byte — the proptests below pin this
//!   with `f64::to_bits` equality.
//! * **Object key order is preserved** (insertion order, a `Vec` of
//!   pairs), so a rendered document is a fixed point: `render(parse(x))
//!   == x` for any `x` this module produced.

use std::fmt::Write as _;

/// Quotes and escapes one JSON string literal (quotes included).
pub fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a usize slice as a JSON array (manifest grid axes).
pub fn jarr_usize(v: &[usize]) -> String {
    format!(
        "[{}]",
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    )
}

/// Renders an f64 slice as a JSON array of shortest-round-trip floats.
pub fn jarr_f64(v: &[f64]) -> String {
    format!(
        "[{}]",
        v.iter()
            .map(|x| format!("{x:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

/// Error-as-message result type of the parser and the accessors.
pub type ParseResult<T> = Result<T, String>;

/// One parsed JSON value. Construct with the `from_*` helpers when
/// building a document to [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token text (lossless for u64 seeds
    /// and bit-exact floats alike).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: key/value pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a byte-positioned message on any structural deviation.
    pub fn parse(text: &str) -> ParseResult<Json> {
        let mut parser = Parser::new(text);
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing bytes after JSON at {}", parser.pos));
        }
        Ok(value)
    }

    /// A float as a shortest-round-trip `Num` token (`{:?}`); the bit
    /// pattern survives parse → [`Json::f64_`]. Non-finite values have
    /// no JSON literal and become `Null`.
    pub fn from_f64(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(format!("{x:?}"))
        } else {
            Json::Null
        }
    }

    /// An unsigned integer as a decimal `Num` token (u64-safe: the
    /// token is never routed through a float).
    pub fn from_u64(x: u64) -> Json {
        Json::Num(x.to_string())
    }

    /// A usize as a decimal `Num` token.
    pub fn from_usize(x: usize) -> Json {
        Json::Num(x.to_string())
    }

    /// A string value.
    pub fn from_str_(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Renders compactly (no whitespace), preserving number tokens and
    /// object key order — the wire-line form of the serve protocol.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(token) => out.push_str(token),
            Json::Str(s) => out.push_str(&jstr(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&jstr(key));
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a required object field.
    ///
    /// # Errors
    ///
    /// Fails when `self` is not an object or the field is missing.
    pub fn get<'a>(&'a self, key: &str) -> ParseResult<&'a Json> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field '{key}'")),
            _ => Err(format!("'{key}' looked up on a non-object")),
        }
    }

    /// Looks up an optional object field (`None` when absent or
    /// `null`) — the forward-compatibility accessor of the wire
    /// protocol.
    pub fn opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .filter(|v| !matches!(v, Json::Null)),
            _ => None,
        }
    }

    /// A required string field.
    ///
    /// # Errors
    ///
    /// Fails when missing or not a string.
    pub fn str_(&self, key: &str) -> ParseResult<&str> {
        match self.get(key)? {
            Json::Str(s) => Ok(s),
            other => Err(format!("field '{key}' is not a string: {other:?}")),
        }
    }

    /// A nullable string field.
    ///
    /// # Errors
    ///
    /// Fails when missing or neither string nor `null`.
    pub fn opt_str(&self, key: &str) -> ParseResult<Option<&str>> {
        match self.get(key)? {
            Json::Null => Ok(None),
            Json::Str(s) => Ok(Some(s)),
            other => Err(format!("field '{key}' is not a string or null: {other:?}")),
        }
    }

    /// A required number field, as its raw token.
    ///
    /// # Errors
    ///
    /// Fails when missing or not a number.
    pub fn num(&self, key: &str) -> ParseResult<&str> {
        match self.get(key)? {
            Json::Num(s) => Ok(s),
            other => Err(format!("field '{key}' is not a number: {other:?}")),
        }
    }

    /// A required usize field.
    ///
    /// # Errors
    ///
    /// Fails when missing, non-numeric, or out of range.
    pub fn usize_(&self, key: &str) -> ParseResult<usize> {
        self.num(key)?
            .parse()
            .map_err(|e| format!("field '{key}': {e}"))
    }

    /// A required u64 field; accepts a raw number token *or* a decimal
    /// string (the manifest renders `seed_base` as a string because a
    /// u64 does not fit in a JSON double).
    ///
    /// # Errors
    ///
    /// Fails when missing or not parseable as u64.
    pub fn u64_(&self, key: &str) -> ParseResult<u64> {
        let token = match self.get(key)? {
            Json::Num(s) | Json::Str(s) => s,
            other => Err(format!("field '{key}' is not a number: {other:?}"))?,
        };
        token.parse().map_err(|e| format!("field '{key}': {e}"))
    }

    /// A required f64 field.
    ///
    /// # Errors
    ///
    /// Fails when missing or not parseable as f64.
    pub fn f64_(&self, key: &str) -> ParseResult<f64> {
        self.num(key)?
            .parse()
            .map_err(|e| format!("field '{key}': {e}"))
    }

    /// A required bool field.
    ///
    /// # Errors
    ///
    /// Fails when missing or not a boolean.
    pub fn bool_(&self, key: &str) -> ParseResult<bool> {
        match self.get(key)? {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("field '{key}' is not a bool: {other:?}")),
        }
    }

    /// A required array field.
    ///
    /// # Errors
    ///
    /// Fails when missing or not an array.
    pub fn arr(&self, key: &str) -> ParseResult<&[Json]> {
        match self.get(key)? {
            Json::Arr(items) => Ok(items),
            other => Err(format!("field '{key}' is not an array: {other:?}")),
        }
    }

    /// A required array-of-usize field.
    ///
    /// # Errors
    ///
    /// Fails when any element is not a usize.
    pub fn usize_arr(&self, key: &str) -> ParseResult<Vec<usize>> {
        self.arr(key)?
            .iter()
            .map(|v| match v {
                Json::Num(s) => s.parse().map_err(|e| format!("field '{key}': {e}")),
                other => Err(format!("field '{key}' element is not a number: {other:?}")),
            })
            .collect()
    }

    /// A required array-of-f64 field.
    ///
    /// # Errors
    ///
    /// Fails when any element is not an f64.
    pub fn f64_arr(&self, key: &str) -> ParseResult<Vec<f64>> {
        self.arr(key)?
            .iter()
            .map(|v| match v {
                Json::Num(s) => s.parse().map_err(|e| format!("field '{key}': {e}")),
                other => Err(format!("field '{key}' element is not a number: {other:?}")),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The strict mini parser (objects, arrays, strings, numbers, booleans,
// `null`). Numbers stay raw tokens so u64 seeds and shortest-round-trip
// floats parse losslessly on demand.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> ParseResult<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".into())
    }

    fn expect(&mut self, b: u8) -> ParseResult<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> ParseResult<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected byte '{}' at {}",
                char::from(other),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> ParseResult<Json> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> ParseResult<Json> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start}"));
        }
        Ok(Json::Num(
            std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "non-UTF8 number".to_string())?
                .to_string(),
        ))
    }

    fn string(&mut self) -> ParseResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("dangling escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| "non-UTF8 \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape '\\{}'", char::from(other))),
                    }
                }
                _ => {
                    // Re-borrow the full UTF-8 character.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-UTF8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> ParseResult<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got '{}'",
                        self.pos,
                        char::from(other)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> ParseResult<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got '{}'",
                        self.pos,
                        char::from(other)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    #[test]
    fn malformed_json_reports_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "{\"schema\": }",
            "[1, 2",
            "{\"a\": 1} trailing",
            "{\"a\": \"\\u12\"}",
            "{\"a\": nul}",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn render_is_a_fixed_point_of_parse() {
        let doc = Json::Obj(vec![
            ("verb".into(), Json::from_str_("solve")),
            ("seed".into(), Json::from_u64(u64::MAX - 7)),
            ("x".into(), Json::from_f64(0.1 + 0.2)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "arr".into(),
                Json::Arr(vec![Json::from_usize(3), Json::from_f64(-1.5)]),
            ),
            ("quoted \"k\"\n".into(), Json::from_str_("v\\t")),
        ]);
        let rendered = doc.render();
        let parsed = Json::parse(&rendered).expect("own output parses");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.render(), rendered, "render∘parse must be identity");
    }

    #[test]
    fn u64_accessor_reads_number_and_string_tokens() {
        let doc = Json::parse(&format!("{{\"a\": {0}, \"b\": \"{0}\"}}", u64::MAX)).unwrap();
        assert_eq!(doc.u64_("a").unwrap(), u64::MAX);
        assert_eq!(doc.u64_("b").unwrap(), u64::MAX);
    }

    /// Random printable-ish strings (including escapes and non-ASCII).
    fn string_strategy() -> impl Strategy<Value = String> {
        vec(any::<u8>(), 0..24).prop_map(|bytes| {
            bytes
                .into_iter()
                .map(|b| match b % 12 {
                    0 => '"',
                    1 => '\\',
                    2 => '\n',
                    3 => '\t',
                    4 => '\u{1}',
                    5 => 'λ',
                    6 => '🦀',
                    other => char::from(b'a' + other),
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Finite floats round-trip bit-exactly through the shortest
        /// `{:?}` token: to_bits equality, not approximate equality.
        #[test]
        fn f64_round_trips_to_the_bit(bits in any::<u64>()) {
            let x = f64::from_bits(bits);
            if x.is_finite() {
                let doc = Json::Obj(vec![("x".into(), Json::from_f64(x))]);
                let parsed = Json::parse(&doc.render()).unwrap();
                let back = parsed.f64_("x").unwrap();
                prop_assert_eq!(back.to_bits(), x.to_bits());
            }
        }

        /// u64 values (beyond 2^53) survive as raw number tokens and as
        /// manifest-style decimal strings.
        #[test]
        fn u64_round_trips_losslessly(x in any::<u64>()) {
            let doc = Json::Obj(vec![
                ("num".into(), Json::from_u64(x)),
                ("str".into(), Json::Str(x.to_string())),
            ]);
            let parsed = Json::parse(&doc.render()).unwrap();
            prop_assert_eq!(parsed.u64_("num").unwrap(), x);
            prop_assert_eq!(parsed.u64_("str").unwrap(), x);
        }

        /// Arbitrary strings (escapes, control bytes, non-ASCII)
        /// round-trip exactly as values and as object keys.
        #[test]
        fn strings_round_trip_exactly(s in string_strategy(), k in string_strategy()) {
            let doc = Json::Obj(vec![(k.clone(), Json::Str(s.clone()))]);
            let parsed = Json::parse(&doc.render()).unwrap();
            prop_assert_eq!(parsed.str_(&k).unwrap(), s.as_str());
            prop_assert_eq!(&parsed, &doc);
        }

        /// Structured values (nested arrays/objects of mixed scalars)
        /// round-trip; render∘parse is the identity on rendered text.
        #[test]
        fn values_round_trip(
            xs in vec(any::<u64>(), 0..8),
            fs in vec(any::<f64>(), 0..8),
            flag in any::<bool>(),
            s in string_strategy(),
        ) {
            let doc = Json::Obj(vec![
                ("ints".into(), Json::Arr(xs.iter().map(|&x| Json::from_u64(x)).collect())),
                ("floats".into(), Json::Arr(fs.iter().map(|&f| Json::from_f64(f)).collect())),
                ("flag".into(), Json::Bool(flag)),
                ("s".into(), Json::Str(s)),
                ("nested".into(), Json::Obj(vec![
                    ("empty_arr".into(), Json::Arr(Vec::new())),
                    ("empty_obj".into(), Json::Obj(Vec::new())),
                ])),
            ]);
            let rendered = doc.render();
            let parsed = Json::parse(&rendered).unwrap();
            // from_f64 maps non-finite to Null, which parses back to
            // Null — so structural equality holds for every input.
            prop_assert_eq!(&parsed, &doc);
            prop_assert_eq!(parsed.render(), rendered);
        }
    }
}
