//! Property-based tests for the optimization substrate.

use edmac_optim::{
    bisect_root, brent_min, golden_section_min, grid_minimize, multistart, Bounds, NelderMead,
    Penalty, Tolerance,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn golden_section_solves_random_quartics(
        center in -50.0..50.0f64,
        c2 in 0.1..10.0f64,
        c4 in 0.0..5.0f64,
        offset in -10.0..10.0f64,
    ) {
        // Strictly unimodal with minimum at `center`.
        let f = |x: f64| c2 * (x - center).powi(2) + c4 * (x - center).powi(4) + offset;
        let m = golden_section_min(f, center - 60.0, center + 55.0, Tolerance::default()).unwrap();
        prop_assert!((m.x - center).abs() < 1e-5, "x={} center={center}", m.x);
        prop_assert!((m.value - offset).abs() < 1e-8);
    }

    #[test]
    fn brent_agrees_with_golden_on_random_quartics(
        center in -20.0..20.0f64,
        c2 in 0.1..10.0f64,
        c4 in 0.0..5.0f64,
    ) {
        let f = |x: f64| c2 * (x - center).powi(2) + c4 * (x - center).powi(4);
        let g = golden_section_min(f, center - 25.0, center + 30.0, Tolerance::default()).unwrap();
        let b = brent_min(f, center - 25.0, center + 30.0, Tolerance::default()).unwrap();
        prop_assert!((g.x - b.x).abs() < 1e-4);
    }

    #[test]
    fn bisection_inverts_monotone_cubics(
        root in -30.0..30.0f64,
        scale in 0.1..5.0f64,
    ) {
        // Strictly increasing cubic with a single real root at `root`.
        let f = |x: f64| scale * ((x - root) + (x - root).powi(3));
        let r = bisect_root(f, root - 40.0, root + 45.0, Tolerance::default()).unwrap();
        prop_assert!((r - root).abs() < 1e-6);
    }

    #[test]
    fn nelder_mead_solves_random_convex_quadratics(
        cx in -3.0..3.0f64,
        cy in -3.0..3.0f64,
        ax in 0.5..5.0f64,
        ay in 0.5..5.0f64,
    ) {
        let bounds = Bounds::new(vec![(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
        let f = |p: &[f64]| ax * (p[0] - cx).powi(2) + ay * (p[1] - cy).powi(2);
        let m = NelderMead::default().minimize(f, &[4.9, -4.9], &bounds).unwrap();
        prop_assert!((m.x[0] - cx).abs() < 1e-3, "{:?} vs ({cx},{cy})", m.x);
        prop_assert!((m.x[1] - cy).abs() < 1e-3);
    }

    #[test]
    fn grid_result_is_within_one_cell_of_optimum(center in -1.0..1.0f64) {
        let bounds = Bounds::new(vec![(-2.0, 2.0)]).unwrap();
        let m = grid_minimize(|p| (p[0] - center).powi(2), &bounds, 81).unwrap();
        let cell = 4.0 / 80.0;
        prop_assert!((m.x[0] - center).abs() <= cell);
    }

    #[test]
    fn multistart_at_least_matches_grid(
        center in -1.5..1.5f64,
        wiggle in 0.0..3.0f64,
    ) {
        // A rippled quadratic: many shallow local minima.
        let f = move |p: &[f64]| (p[0] - center).powi(2) + wiggle * (6.0 * p[0]).sin().powi(2) * 0.1;
        let bounds = Bounds::new(vec![(-3.0, 3.0)]).unwrap();
        let grid = grid_minimize(f, &bounds, 31).unwrap();
        let multi = multistart(f, &bounds, 31, 4, NelderMead::default()).unwrap();
        prop_assert!(multi.value <= grid.value + 1e-12);
    }

    #[test]
    fn penalty_solution_is_feasible_when_reported(
        limit in -1.0..1.0f64,
        target in 1.5..4.0f64,
    ) {
        // min (x - target)^2 s.t. x <= limit, with target > limit:
        // solution must land on the boundary.
        let bounds = Bounds::new(vec![(-5.0, 5.0)]).unwrap();
        let g = move |p: &[f64]| p[0] - limit;
        let m = Penalty::default()
            .minimize(|p| (p[0] - target).powi(2), &[&g], &[-2.0], &bounds)
            .unwrap();
        prop_assert!(g(&m.x) <= 1e-5, "violation {}", g(&m.x));
        prop_assert!((m.x[0] - limit).abs() < 5e-3, "x={} limit={limit}", m.x[0]);
    }
}
