//! Exterior penalty method for inequality-constrained minimization.

use crate::error::OptimError;
use crate::grid::Bounds;
use crate::nelder_mead::{NelderMead, SimplexMinimum};

/// Inequality constraint convention used across the crate: a constraint
/// function `g` is satisfied where `g(x) <= 0`.
pub type Constraint<'a> = &'a dyn Fn(&[f64]) -> f64;

/// Exterior penalty solver for `min f(x)` s.t. `g_i(x) <= 0`, `x` in a
/// box.
///
/// Solves a sequence of unconstrained problems
/// `min f(x) + mu * sum_i max(0, g_i(x))^2` with geometrically growing
/// `mu`, restarting the simplex search from the previous round's
/// solution. This is the solver behind (P1) and (P2): the protocols'
/// capacity/latency/budget constraints are handed in as `g_i`.
///
/// # Examples
///
/// ```
/// use edmac_optim::{Bounds, Penalty};
///
/// // min (x-3)^2 s.t. x <= 1  ->  x* = 1.
/// let bounds = Bounds::new(vec![(0.0, 10.0)]).unwrap();
/// let g = |x: &[f64]| x[0] - 1.0;
/// let m = Penalty::default()
///     .minimize(|x| (x[0] - 3.0).powi(2), &[&g], &[5.0], &bounds)
///     .unwrap();
/// assert!((m.x[0] - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Penalty {
    /// Initial penalty weight.
    pub mu0: f64,
    /// Multiplicative growth of the weight per round.
    pub growth: f64,
    /// Number of penalty rounds.
    pub rounds: usize,
    /// Feasibility tolerance on each `g_i` at the final point.
    pub feasibility_tol: f64,
    /// Inner unconstrained solver.
    pub local: NelderMead,
}

impl Default for Penalty {
    fn default() -> Penalty {
        Penalty {
            mu0: 10.0,
            growth: 10.0,
            rounds: 8,
            feasibility_tol: 1e-6,
            local: NelderMead::default(),
        }
    }
}

impl Penalty {
    /// Minimizes `f` subject to `constraints[i](x) <= 0` within
    /// `bounds`, starting from `x0`.
    ///
    /// # Errors
    ///
    /// * Propagates inner-solver errors ([`OptimError::Dimension`],
    ///   [`OptimError::ObjectiveNaN`]).
    /// * [`OptimError::Infeasible`] if the final point still violates a
    ///   constraint by more than `feasibility_tol` (scaled by the
    ///   violation's magnitude).
    pub fn minimize<F: FnMut(&[f64]) -> f64>(
        &self,
        mut f: F,
        constraints: &[Constraint<'_>],
        x0: &[f64],
        bounds: &Bounds,
    ) -> Result<SimplexMinimum, OptimError> {
        let mut mu = self.mu0;
        let mut x = x0.to_vec();
        let mut last = None;
        for _ in 0..self.rounds {
            let penalized = |p: &[f64]| {
                let base = f(p);
                let violation: f64 = constraints.iter().map(|g| g(p).max(0.0).powi(2)).sum();
                base + mu * violation
            };
            let m = self.local.minimize(penalized, &x, bounds)?;
            x = m.x.clone();
            last = Some(m);
            mu *= self.growth;
        }
        let m = last.expect("rounds >= 1 by default; guarded below");
        let worst_violation = constraints
            .iter()
            .map(|g| g(&m.x))
            .fold(f64::NEG_INFINITY, f64::max);
        if worst_violation > self.feasibility_tol {
            return Err(OptimError::Infeasible);
        }
        // Report the true objective, not the penalized one.
        let value = f(&m.x);
        Ok(SimplexMinimum { value, ..m })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_problem_passes_through() {
        let bounds = Bounds::new(vec![(-5.0, 5.0)]).unwrap();
        let m = Penalty::default()
            .minimize(|x| (x[0] + 2.0).powi(2), &[], &[3.0], &bounds)
            .unwrap();
        assert!((m.x[0] + 2.0).abs() < 1e-4);
    }

    #[test]
    fn active_constraint_binds() {
        // min x^2 + y^2 s.t. x + y >= 1 (i.e. 1 - x - y <= 0):
        // optimum at (0.5, 0.5).
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let g = |x: &[f64]| 1.0 - x[0] - x[1];
        let m = Penalty::default()
            .minimize(|x| x[0] * x[0] + x[1] * x[1], &[&g], &[1.5, 1.5], &bounds)
            .unwrap();
        assert!((m.x[0] - 0.5).abs() < 5e-3, "got {:?}", m.x);
        assert!((m.x[1] - 0.5).abs() < 5e-3);
        assert!(g(&m.x) <= 1e-5);
    }

    #[test]
    fn inactive_constraint_is_ignored() {
        let bounds = Bounds::new(vec![(-5.0, 5.0)]).unwrap();
        let g = |x: &[f64]| x[0] - 100.0; // never active in bounds
        let m = Penalty::default()
            .minimize(|x| (x[0] - 1.0).powi(2), &[&g], &[-4.0], &bounds)
            .unwrap();
        assert!((m.x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn contradictory_constraints_are_infeasible() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let g1 = |x: &[f64]| x[0] - 0.2; // x <= 0.2
        let g2 = |x: &[f64]| 0.8 - x[0]; // x >= 0.8
        let r = Penalty::default().minimize(|x| x[0], &[&g1, &g2], &[0.5], &bounds);
        assert!(matches!(r, Err(OptimError::Infeasible)));
    }

    #[test]
    fn reported_value_is_unpenalized() {
        let bounds = Bounds::new(vec![(0.0, 10.0)]).unwrap();
        let g = |x: &[f64]| 2.0 - x[0]; // x >= 2
        let m = Penalty::default()
            .minimize(|x| x[0], &[&g], &[5.0], &bounds)
            .unwrap();
        assert!(
            (m.value - 2.0).abs() < 1e-3,
            "value {} should be f(x*), not penalized",
            m.value
        );
    }
}
