//! Nelder–Mead simplex minimization with box bounds.

use crate::error::OptimError;
use crate::grid::Bounds;

/// Result of a simplex minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexMinimum {
    /// Argument of the minimum.
    pub x: Vec<f64>,
    /// Objective value at [`SimplexMinimum::x`].
    pub value: f64,
    /// Iterations used.
    pub iterations: usize,
}

/// Derivative-free simplex minimizer (Nelder–Mead) with box bounds,
/// used for protocols with more than one tunable MAC parameter.
///
/// Iterates reflection / expansion / contraction / shrink with the
/// standard coefficients; every candidate is clamped into the bounds, so
/// the simplex can crawl along an active box constraint.
///
/// # Examples
///
/// ```
/// use edmac_optim::{Bounds, NelderMead};
///
/// let bounds = Bounds::new(vec![(-5.0, 5.0), (-5.0, 5.0)]).unwrap();
/// let rosenbrock = |x: &[f64]| {
///     (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
/// };
/// let m = NelderMead::default().minimize(rosenbrock, &[-1.0, 2.0], &bounds).unwrap();
/// assert!((m.x[0] - 1.0).abs() < 1e-4 && (m.x[1] - 1.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMead {
    /// Maximum iterations.
    pub max_iter: usize,
    /// Convergence threshold on the simplex's objective spread.
    pub f_tol: f64,
    /// Convergence threshold on the simplex diameter. Both thresholds
    /// must hold to terminate: an objective tie across a wide simplex
    /// (e.g. symmetric straddling of a 1-D optimum) triggers a shrink
    /// instead of a premature exit.
    pub x_tol: f64,
    /// Initial simplex edge, as a fraction of each bound's width.
    pub initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> NelderMead {
        NelderMead {
            max_iter: 2_000,
            f_tol: 1e-12,
            x_tol: 1e-9,
            initial_step: 0.05,
        }
    }
}

impl NelderMead {
    /// Minimizes `f` starting from `x0`, keeping all iterates inside
    /// `bounds`.
    ///
    /// # Errors
    ///
    /// * [`OptimError::Dimension`] if `x0` and `bounds` disagree.
    /// * [`OptimError::ObjectiveNaN`] if `f` produces NaN.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(
        &self,
        mut f: F,
        x0: &[f64],
        bounds: &Bounds,
    ) -> Result<SimplexMinimum, OptimError> {
        let n = bounds.len();
        if x0.len() != n {
            return Err(OptimError::Dimension {
                expected: n,
                got: x0.len(),
            });
        }
        let clamp = |x: &mut Vec<f64>| bounds.clamp(x);

        // Initial simplex: x0 plus one step along each axis.
        let mut start = x0.to_vec();
        clamp(&mut start);
        let mut simplex: Vec<Vec<f64>> = vec![start.clone()];
        for i in 0..n {
            let mut v = start.clone();
            let width = bounds.width(i);
            let step = (self.initial_step * width).max(1e-12);
            // Step inward if the start sits on the upper edge.
            v[i] = if v[i] + step <= bounds.upper(i) {
                v[i] + step
            } else {
                v[i] - step
            };
            clamp(&mut v);
            simplex.push(v);
        }
        let mut values = Vec::with_capacity(n + 1);
        for v in &simplex {
            let fv = f(v);
            if fv.is_nan() {
                return Err(OptimError::ObjectiveNaN { at: v.clone() });
            }
            values.push(fv);
        }

        let mut iterations = 0;
        while iterations < self.max_iter {
            // Order the simplex by objective value.
            let mut idx: Vec<usize> = (0..=n).collect();
            idx.sort_by(|&a, &b| {
                values[a]
                    .partial_cmp(&values[b])
                    .expect("no NaN by invariant")
            });
            let best = idx[0];
            let worst = idx[n];
            let second_worst = idx[n.saturating_sub(1)];

            let diameter = simplex
                .iter()
                .map(|v| {
                    v.iter()
                        .zip(&simplex[best])
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f64, f64::max)
                })
                .fold(0.0f64, f64::max);
            if (values[worst] - values[best]).abs() <= self.f_tol {
                if diameter <= self.x_tol {
                    break;
                }
                // Objective tie across a wide simplex: shrink toward the
                // best vertex rather than terminating early.
                let anchor = simplex[best].clone();
                for (k, v) in simplex.iter_mut().enumerate() {
                    if k == best {
                        continue;
                    }
                    for (xi, &ai) in v.iter_mut().zip(&anchor) {
                        *xi = ai + 0.5 * (*xi - ai);
                    }
                    bounds.clamp(v);
                    values[k] = f(v);
                    if values[k].is_nan() {
                        return Err(OptimError::ObjectiveNaN { at: v.clone() });
                    }
                }
                iterations += 1;
                continue;
            }

            // Centroid of all but the worst.
            let mut centroid = vec![0.0; n];
            for (k, v) in simplex.iter().enumerate() {
                if k == worst {
                    continue;
                }
                for (c, &xi) in centroid.iter_mut().zip(v) {
                    *c += xi / n as f64;
                }
            }

            let propose = |coef: f64, f: &mut F| -> Result<(Vec<f64>, f64), OptimError> {
                let mut p: Vec<f64> = centroid
                    .iter()
                    .zip(&simplex[worst])
                    .map(|(&c, &w)| c + coef * (c - w))
                    .collect();
                bounds.clamp(&mut p);
                let fp = f(&p);
                if fp.is_nan() {
                    return Err(OptimError::ObjectiveNaN { at: p });
                }
                Ok((p, fp))
            };

            let (reflected, f_reflected) = propose(1.0, &mut f)?;
            if f_reflected < values[best] {
                // Try to expand further in the same direction.
                let (expanded, f_expanded) = propose(2.0, &mut f)?;
                if f_expanded < f_reflected {
                    simplex[worst] = expanded;
                    values[worst] = f_expanded;
                } else {
                    simplex[worst] = reflected;
                    values[worst] = f_reflected;
                }
            } else if f_reflected < values[second_worst] {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
            } else {
                let (contracted, f_contracted) = propose(-0.5, &mut f)?;
                if f_contracted < values[worst] {
                    simplex[worst] = contracted;
                    values[worst] = f_contracted;
                } else {
                    // Shrink toward the best vertex.
                    let anchor = simplex[best].clone();
                    for (k, v) in simplex.iter_mut().enumerate() {
                        if k == best {
                            continue;
                        }
                        for (xi, &ai) in v.iter_mut().zip(&anchor) {
                            *xi = ai + 0.5 * (*xi - ai);
                        }
                        bounds.clamp(v);
                        values[k] = f(v);
                        if values[k].is_nan() {
                            return Err(OptimError::ObjectiveNaN { at: v.clone() });
                        }
                    }
                }
            }
            iterations += 1;
        }

        let best = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN by invariant"))
            .map(|(i, _)| i)
            .expect("simplex is non-empty");
        Ok(SimplexMinimum {
            x: simplex[best].clone(),
            value: values[best],
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds2(lo: f64, hi: f64) -> Bounds {
        Bounds::new(vec![(lo, hi), (lo, hi)]).unwrap()
    }

    #[test]
    fn minimizes_convex_quadratic() {
        let m = NelderMead::default()
            .minimize(
                |x| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2),
                &[4.0, 4.0],
                &bounds2(-5.0, 5.0),
            )
            .unwrap();
        assert!((m.x[0] - 1.0).abs() < 1e-5);
        assert!((m.x[1] + 2.0).abs() < 1e-5);
        assert!(m.value < 1e-9);
    }

    #[test]
    fn respects_active_box_constraint() {
        // Unconstrained optimum at (-3, 0) but the box stops at -1.
        let m = NelderMead::default()
            .minimize(
                |x| (x[0] + 3.0).powi(2) + x[1].powi(2),
                &[0.5, 0.5],
                &bounds2(-1.0, 1.0),
            )
            .unwrap();
        assert!(
            (m.x[0] + 1.0).abs() < 1e-5,
            "x0 should pin to the lower bound"
        );
        assert!(m.x[1].abs() < 1e-4);
    }

    #[test]
    fn start_on_upper_edge_steps_inward() {
        let m = NelderMead::default()
            .minimize(
                |x| (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2),
                &[1.0, 1.0],
                &bounds2(0.0, 1.0),
            )
            .unwrap();
        assert!((m.x[0] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let r = NelderMead::default().minimize(|x| x[0], &[0.0, 0.0, 0.0], &bounds2(0.0, 1.0));
        assert!(matches!(
            r,
            Err(OptimError::Dimension {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn nan_objective_is_reported() {
        let r = NelderMead::default().minimize(|_| f64::NAN, &[0.5, 0.5], &bounds2(0.0, 1.0));
        assert!(matches!(r, Err(OptimError::ObjectiveNaN { .. })));
    }

    #[test]
    fn one_dimensional_problems_work() {
        let bounds = Bounds::new(vec![(0.0, 10.0)]).unwrap();
        let m = NelderMead::default()
            .minimize(|x| (x[0] - 7.25).powi(2), &[1.0], &bounds)
            .unwrap();
        assert!((m.x[0] - 7.25).abs() < 1e-5);
    }
}
