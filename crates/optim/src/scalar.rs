//! Scalar minimization and root finding.

use crate::error::OptimError;

/// Convergence control shared by the scalar solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute tolerance on the argument.
    pub x_abs: f64,
    /// Maximum iterations before giving up.
    pub max_iter: usize,
}

impl Default for Tolerance {
    /// `1e-10` on the argument, 200 iterations — tight enough that model
    /// noise, not solver noise, dominates every experiment.
    fn default() -> Tolerance {
        Tolerance {
            x_abs: 1e-10,
            max_iter: 200,
        }
    }
}

impl Tolerance {
    /// A looser tolerance for coarse scans.
    pub fn coarse() -> Tolerance {
        Tolerance {
            x_abs: 1e-6,
            max_iter: 120,
        }
    }
}

/// Result of a scalar minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarMinimum {
    /// Argument of the minimum.
    pub x: f64,
    /// Objective value at [`ScalarMinimum::x`].
    pub value: f64,
    /// Iterations used.
    pub iterations: usize,
}

fn check_interval(a: f64, b: f64) -> Result<(), OptimError> {
    if a.is_finite() && b.is_finite() && a < b {
        Ok(())
    } else {
        Err(OptimError::InvalidInterval { a, b })
    }
}

/// Minimizes a unimodal `f` on `[a, b]` by golden-section search.
///
/// Golden-section is slow but certain: it needs no smoothness and its
/// bracket shrinks by a constant factor per evaluation, which suits the
/// piecewise model formulas (ceil/max terms) in `edmac-mac`.
///
/// # Errors
///
/// * [`OptimError::InvalidInterval`] if `a >= b` or an endpoint is not
///   finite.
/// * [`OptimError::ObjectiveNaN`] if `f` returns NaN.
///
/// # Examples
///
/// ```
/// use edmac_optim::{golden_section_min, Tolerance};
///
/// let m = golden_section_min(|x: f64| x.abs(), -1.0, 3.0, Tolerance::default()).unwrap();
/// assert!(m.x.abs() < 1e-6);
/// ```
pub fn golden_section_min<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: Tolerance,
) -> Result<ScalarMinimum, OptimError> {
    check_interval(a, b)?;
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut lo = a;
    let mut hi = b;
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut iterations = 0;
    while hi - lo > tol.x_abs && iterations < tol.max_iter {
        if f1.is_nan() {
            return Err(OptimError::ObjectiveNaN { at: vec![x1] });
        }
        if f2.is_nan() {
            return Err(OptimError::ObjectiveNaN { at: vec![x2] });
        }
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        }
        iterations += 1;
    }
    let x = 0.5 * (lo + hi);
    let value = f(x);
    if value.is_nan() {
        return Err(OptimError::ObjectiveNaN { at: vec![x] });
    }
    // Also consider the probe points and original endpoints: on
    // monotone objectives the optimum sits on the boundary.
    let mut best = ScalarMinimum {
        x,
        value,
        iterations,
    };
    for (cx, cv) in [(a, f(a)), (b, f(b)), (x1, f1), (x2, f2)] {
        if cv < best.value {
            best = ScalarMinimum {
                x: cx,
                value: cv,
                iterations,
            };
        }
    }
    Ok(best)
}

/// Minimizes `f` on `[a, b]` by Brent's method (golden-section with
/// parabolic acceleration).
///
/// Converges superlinearly on smooth objectives; falls back to
/// golden-section steps otherwise. Use this when `f` is smooth (the
/// closed-form protocol models); use [`golden_section_min`] when it is
/// not.
///
/// # Errors
///
/// Same contract as [`golden_section_min`].
pub fn brent_min<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: Tolerance,
) -> Result<ScalarMinimum, OptimError> {
    check_interval(a, b)?;
    const INV_PHI2: f64 = 0.381_966_011_250_105_1; // 2 - phi
    let (mut lo, mut hi) = (a, b);
    let mut x = lo + INV_PHI2 * (hi - lo);
    let mut w = x;
    let mut v = x;
    let mut fx = f(x);
    if fx.is_nan() {
        return Err(OptimError::ObjectiveNaN { at: vec![x] });
    }
    let mut fw = fx;
    let mut fv = fx;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;
    let mut iterations = 0;

    while iterations < tol.max_iter {
        let m = 0.5 * (lo + hi);
        let tol1 = tol.x_abs.max(1e-12 * x.abs());
        let tol2 = 2.0 * tol1;
        if (x - m).abs() <= tol2 - 0.5 * (hi - lo) {
            break;
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Fit a parabola through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let q0 = (x - v) * (fx - fw);
            let mut p = (x - v) * q0 - (x - w) * r;
            let mut q = 2.0 * (q0 - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_prev = e;
            e = d;
            if p.abs() < (0.5 * q * e_prev).abs() && p > q * (lo - x) && p < q * (hi - x) {
                d = p / q;
                let u = x + d;
                if u - lo < tol2 || hi - u < tol2 {
                    d = if m > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x < m { hi - x } else { lo - x };
            d = INV_PHI2 * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else if d > 0.0 {
            x + tol1
        } else {
            x - tol1
        };
        let fu = f(u);
        if fu.is_nan() {
            return Err(OptimError::ObjectiveNaN { at: vec![u] });
        }
        if fu <= fx {
            if u < x {
                hi = x;
            } else {
                lo = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                lo = u;
            } else {
                hi = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
        iterations += 1;
    }

    // Guard the boundary case exactly as golden-section does.
    let mut best = ScalarMinimum {
        x,
        value: fx,
        iterations,
    };
    for cx in [a, b] {
        let cv = f(cx);
        if cv < best.value {
            best = ScalarMinimum {
                x: cx,
                value: cv,
                iterations,
            };
        }
    }
    Ok(best)
}

/// Finds a root of `f` on `[a, b]` by bisection, given `f(a)` and `f(b)`
/// of opposite sign.
///
/// # Errors
///
/// * [`OptimError::InvalidInterval`] for a malformed interval.
/// * [`OptimError::NoSignChange`] if `f(a)·f(b) > 0`.
/// * [`OptimError::ObjectiveNaN`] if `f` returns NaN.
///
/// # Examples
///
/// ```
/// use edmac_optim::{bisect_root, Tolerance};
///
/// let root = bisect_root(|x| x * x - 2.0, 0.0, 2.0, Tolerance::default()).unwrap();
/// assert!((root - 2.0f64.sqrt()).abs() < 1e-9);
/// ```
pub fn bisect_root<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: Tolerance,
) -> Result<f64, OptimError> {
    check_interval(a, b)?;
    let mut lo = a;
    let mut hi = b;
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo.is_nan() {
        return Err(OptimError::ObjectiveNaN { at: vec![lo] });
    }
    if fhi.is_nan() {
        return Err(OptimError::ObjectiveNaN { at: vec![hi] });
    }
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(OptimError::NoSignChange { fa: flo, fb: fhi });
    }
    for _ in 0..tol.max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid.is_nan() {
            return Err(OptimError::ObjectiveNaN { at: vec![mid] });
        }
        if fmid == 0.0 || hi - lo < tol.x_abs {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Scans `[a, b]` in `steps` uniform increments for a sub-interval where
/// `f` changes sign, returning it for use with [`bisect_root`].
///
/// Returns `None` if no sign change is observed (the function may still
/// have roots between samples — pick `steps` from the known scale of the
/// problem).
pub fn find_sign_change<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    steps: usize,
) -> Option<(f64, f64)> {
    if steps == 0 || a >= b || a.is_nan() || b.is_nan() {
        return None;
    }
    let dx = (b - a) / steps as f64;
    let mut x_prev = a;
    let mut f_prev = f(a);
    for i in 1..=steps {
        let x = a + dx * i as f64;
        let fx = f(x);
        if f_prev.is_finite() && fx.is_finite() && f_prev.signum() != fx.signum() {
            return Some((x_prev, x));
        }
        x_prev = x;
        f_prev = fx;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_quadratic_minimum() {
        let m = golden_section_min(
            |x| (x - 3.5).powi(2) + 1.0,
            -10.0,
            10.0,
            Tolerance::default(),
        )
        .unwrap();
        assert!((m.x - 3.5).abs() < 1e-6);
        assert!((m.value - 1.0).abs() < 1e-10);
    }

    #[test]
    fn golden_handles_boundary_minimum() {
        // Monotone increasing: minimum at the left edge.
        let m = golden_section_min(|x| x, 2.0, 9.0, Tolerance::default()).unwrap();
        assert_eq!(m.x, 2.0);
        assert_eq!(m.value, 2.0);
    }

    #[test]
    fn golden_rejects_bad_interval() {
        assert!(matches!(
            golden_section_min(|x| x, 1.0, 1.0, Tolerance::default()),
            Err(OptimError::InvalidInterval { .. })
        ));
        assert!(golden_section_min(|x| x, f64::NAN, 1.0, Tolerance::default()).is_err());
    }

    #[test]
    fn golden_detects_nan_objective() {
        let r = golden_section_min(
            |x| if x > 0.5 { f64::NAN } else { x },
            0.0,
            1.0,
            Tolerance::default(),
        );
        assert!(matches!(r, Err(OptimError::ObjectiveNaN { .. })));
    }

    #[test]
    fn brent_matches_golden_on_smooth_function() {
        let f = |x: f64| (x - 1.25).powi(2) + 0.5 * (x - 1.25).powi(4);
        let g = golden_section_min(f, -4.0, 6.0, Tolerance::default()).unwrap();
        let b = brent_min(f, -4.0, 6.0, Tolerance::default()).unwrap();
        assert!((g.x - b.x).abs() < 1e-6);
        assert!(
            b.iterations <= g.iterations,
            "brent should not be slower on smooth f"
        );
    }

    #[test]
    fn brent_handles_boundary_minimum() {
        let m = brent_min(|x| -x, 0.0, 4.0, Tolerance::default()).unwrap();
        assert_eq!(m.x, 4.0);
    }

    #[test]
    fn brent_on_nonsmooth_still_converges() {
        let m = brent_min(|x: f64| (x - 0.3).abs(), -2.0, 2.0, Tolerance::default()).unwrap();
        assert!((m.x - 0.3).abs() < 1e-6);
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect_root(|x| x * x - 2.0, 0.0, 2.0, Tolerance::default()).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn bisect_accepts_exact_endpoint_roots() {
        assert_eq!(
            bisect_root(|x| x, 0.0, 1.0, Tolerance::default()).unwrap(),
            0.0
        );
        assert_eq!(
            bisect_root(|x| x - 1.0, 0.0, 1.0, Tolerance::default()).unwrap(),
            1.0
        );
    }

    #[test]
    fn bisect_requires_sign_change() {
        assert!(matches!(
            bisect_root(|x| x * x + 1.0, -1.0, 1.0, Tolerance::default()),
            Err(OptimError::NoSignChange { .. })
        ));
    }

    #[test]
    fn sign_change_scan_brackets_root() {
        let (lo, hi) = find_sign_change(|x| x.cos(), 0.0, 3.0, 30).unwrap();
        assert!(lo < std::f64::consts::FRAC_PI_2 && std::f64::consts::FRAC_PI_2 < hi);
        assert!(find_sign_change(|x| x * x + 1.0, -1.0, 1.0, 10).is_none());
        assert!(find_sign_change(|x| x, 1.0, 0.0, 10).is_none());
        assert!(find_sign_change(|x| x, 0.0, 1.0, 0).is_none());
    }
}
