//! Numerical optimization substrate for the energy–delay game.
//!
//! The paper's framework solves three nonlinear programs per protocol —
//! energy minimization under a delay bound **(P1)**, delay minimization
//! under an energy budget **(P2)**, and the concave Nash-bargaining
//! program **(P4)** — over one- or two-dimensional MAC parameter vectors.
//! None of the permitted dependencies provide a solver, so this crate
//! implements the required numerics from scratch:
//!
//! * [`golden_section_min`] / [`brent_min`] — derivative-free scalar
//!   minimization over an interval;
//! * [`bisect_root`] / [`find_sign_change`] — root finding for
//!   constraint-boundary inversion ("largest wake-up interval with
//!   `L(X) ≤ Lmax`");
//! * [`NelderMead`] — simplex minimization with box bounds for
//!   multi-parameter protocols;
//! * [`Penalty`] — exterior penalty wrapper turning constrained problems
//!   into a sequence of unconstrained ones;
//! * [`LogBarrier`] — interior-point maximizer for the concave (P4)
//!   objective `log(Eworst − E) + log(Lworst − L)`;
//! * [`grid_minimize`] / [`multistart`] — coarse global sweeps that seed
//!   the local methods, guarding against the non-convexity the paper
//!   notes in (P3) before its transform.
//!
//! Every solver is deterministic, allocation-light and returns a typed
//! [`OptimError`] instead of silently returning garbage on bad input.
//!
//! # Examples
//!
//! ```
//! use edmac_optim::{golden_section_min, Tolerance};
//!
//! let m = golden_section_min(|x| (x - 2.0).powi(2), 0.0, 5.0, Tolerance::default()).unwrap();
//! assert!((m.x - 2.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs, missing_debug_implementations)]

mod barrier;
mod error;
mod grid;
mod nelder_mead;
mod penalty;
mod scalar;

pub use barrier::LogBarrier;
pub use error::OptimError;
pub use grid::{grid_minimize, multistart, Bounds};
pub use nelder_mead::{NelderMead, SimplexMinimum};
pub use penalty::Penalty;
pub use scalar::{
    bisect_root, brent_min, find_sign_change, golden_section_min, ScalarMinimum, Tolerance,
};
