//! Interior-point (log-barrier) maximization for the concave Nash
//! bargaining program.

use crate::error::OptimError;
use crate::grid::Bounds;
use crate::nelder_mead::{NelderMead, SimplexMinimum};
use crate::penalty::Constraint;

/// Log-barrier maximizer for `max f(x)` s.t. `g_i(x) < 0`, `x` in a box.
///
/// This mirrors how the paper solves (P4): the transformed Nash
/// objective `log(Eworst − E(X)) + log(Lworst − L(X))` is concave, and
/// the requirement constraints `E ≤ Ebudget`, `L ≤ Lmax` are folded in
/// through a barrier `−(1/t)·Σ log(−g_i)`, with `t` increased
/// geometrically while re-solving from the previous center.
///
/// # Examples
///
/// ```
/// use edmac_optim::{Bounds, LogBarrier};
///
/// // max log(x) + log(2 - x) s.t. x <= 1.5: unconstrained optimum at 1,
/// // already feasible, so the barrier must not move it.
/// let bounds = Bounds::new(vec![(1e-6, 2.0 - 1e-6)]).unwrap();
/// let g = |x: &[f64]| x[0] - 1.5;
/// let m = LogBarrier::default()
///     .maximize(|x| x[0].ln() + (2.0 - x[0]).ln(), &[&g], &[0.5], &bounds)
///     .unwrap();
/// assert!((m.x[0] - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogBarrier {
    /// Initial barrier weight `t`.
    pub t0: f64,
    /// Multiplicative growth of `t` per round.
    pub growth: f64,
    /// Number of rounds.
    pub rounds: usize,
    /// Inner unconstrained solver.
    pub local: NelderMead,
}

impl Default for LogBarrier {
    fn default() -> LogBarrier {
        LogBarrier {
            t0: 1.0,
            growth: 8.0,
            rounds: 10,
            local: NelderMead::default(),
        }
    }
}

impl LogBarrier {
    /// Maximizes `f` subject to `constraints[i](x) < 0` within `bounds`,
    /// starting from the strictly feasible `x0`.
    ///
    /// # Errors
    ///
    /// * [`OptimError::Infeasible`] if `x0` violates a constraint (the
    ///   barrier needs a strictly feasible start; use a grid scan to
    ///   find one).
    /// * Propagates inner-solver errors.
    pub fn maximize<F: FnMut(&[f64]) -> f64>(
        &self,
        mut f: F,
        constraints: &[Constraint<'_>],
        x0: &[f64],
        bounds: &Bounds,
    ) -> Result<SimplexMinimum, OptimError> {
        if constraints.iter().any(|g| g(x0) >= 0.0) {
            return Err(OptimError::Infeasible);
        }
        let mut t = self.t0;
        let mut x = x0.to_vec();
        let mut best: Option<SimplexMinimum> = None;
        for _ in 0..self.rounds {
            let objective = |p: &[f64]| {
                // Infeasible points get +inf so the simplex retreats.
                let mut barrier = 0.0;
                for g in constraints {
                    let gv = g(p);
                    if gv >= 0.0 {
                        return f64::INFINITY;
                    }
                    barrier += (-gv).ln();
                }
                let fv = f(p);
                if fv == f64::NEG_INFINITY {
                    return f64::INFINITY;
                }
                -fv - barrier / t
            };
            let m = self.local.minimize(objective, &x, bounds)?;
            if m.value.is_finite() {
                x = m.x.clone();
                let true_value = f(&x);
                let candidate = SimplexMinimum {
                    x: m.x,
                    value: true_value,
                    iterations: m.iterations,
                };
                if best.as_ref().is_none_or(|b| candidate.value > b.value) {
                    best = Some(candidate);
                }
            }
            t *= self.growth;
        }
        best.ok_or(OptimError::Infeasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_analytic_product_maximum() {
        // The canonical symmetric Nash product: max log(x) + log(y)
        // s.t. x + y <= 1 has its unique optimum at (0.5, 0.5).
        let bounds = Bounds::new(vec![(1e-9, 1.0), (1e-9, 1.0)]).unwrap();
        let g = |p: &[f64]| p[0] + p[1] - 1.0;
        let m = LogBarrier::default()
            .maximize(|p| p[0].ln() + p[1].ln(), &[&g], &[0.2, 0.2], &bounds)
            .unwrap();
        assert!((m.x[0] - 0.5).abs() < 1e-2, "got {:?}", m.x);
        assert!((m.x[1] - 0.5).abs() < 1e-2, "got {:?}", m.x);
    }

    #[test]
    fn interior_optimum_is_untouched_by_barrier() {
        let bounds = Bounds::new(vec![(0.0, 10.0)]).unwrap();
        let g = |p: &[f64]| p[0] - 9.0;
        let m = LogBarrier::default()
            .maximize(|p| -(p[0] - 4.0) * (p[0] - 4.0), &[&g], &[1.0], &bounds)
            .unwrap();
        assert!((m.x[0] - 4.0).abs() < 1e-3);
    }

    #[test]
    fn infeasible_start_is_rejected() {
        let bounds = Bounds::new(vec![(0.0, 10.0)]).unwrap();
        let g = |p: &[f64]| p[0] - 1.0;
        let r = LogBarrier::default().maximize(|p| p[0], &[&g], &[5.0], &bounds);
        assert!(matches!(r, Err(OptimError::Infeasible)));
    }

    #[test]
    fn constrained_optimum_approaches_boundary() {
        // max x s.t. x <= 2 -> x* -> 2 as t grows.
        let bounds = Bounds::new(vec![(0.0, 10.0)]).unwrap();
        let g = |p: &[f64]| p[0] - 2.0;
        let m = LogBarrier::default()
            .maximize(|p| p[0], &[&g], &[0.5], &bounds)
            .unwrap();
        assert!(m.x[0] <= 2.0 + 1e-9);
        assert!(
            m.x[0] > 1.99,
            "should press against the constraint, got {}",
            m.x[0]
        );
    }
}
