//! Error type shared by all solvers.

/// Errors reported by the optimization routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimError {
    /// An interval `[a, b]` with `a >= b`, or containing non-finite
    /// endpoints, was supplied.
    InvalidInterval {
        /// Lower endpoint as given.
        a: f64,
        /// Upper endpoint as given.
        b: f64,
    },
    /// A root-finder was given an interval whose endpoints do not
    /// bracket a sign change.
    NoSignChange {
        /// Function value at the lower endpoint.
        fa: f64,
        /// Function value at the upper endpoint.
        fb: f64,
    },
    /// The objective returned NaN at the reported point.
    ObjectiveNaN {
        /// Where the objective failed.
        at: Vec<f64>,
    },
    /// The iteration budget was exhausted before reaching the tolerance.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
    },
    /// No feasible point was found (all evaluated points violate the
    /// constraints).
    Infeasible,
    /// A dimension/parameter mismatch (e.g. empty bounds, or a start
    /// point of the wrong length).
    Dimension {
        /// Expected dimension.
        expected: usize,
        /// Received dimension.
        got: usize,
    },
}

impl std::fmt::Display for OptimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimError::InvalidInterval { a, b } => {
                write!(
                    f,
                    "invalid interval [{a}, {b}]: endpoints must be finite with a < b"
                )
            }
            OptimError::NoSignChange { fa, fb } => {
                write!(f, "no sign change bracketed: f(a)={fa}, f(b)={fb}")
            }
            OptimError::ObjectiveNaN { at } => {
                write!(f, "objective returned NaN at {at:?}")
            }
            OptimError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            OptimError::Infeasible => write!(f, "no feasible point found"),
            OptimError::Dimension { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for OptimError {}

#[cfg(test)]
mod tests {
    use super::OptimError;

    #[test]
    fn display_messages_are_specific() {
        let e = OptimError::InvalidInterval { a: 2.0, b: 1.0 };
        assert!(e.to_string().contains("[2, 1]"));
        let e = OptimError::NoConvergence { iterations: 100 };
        assert!(e.to_string().contains("100"));
        let e = OptimError::Dimension {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expected 2"));
    }
}
