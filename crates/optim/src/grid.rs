//! Box bounds, grid sweeps and multistart refinement.

use crate::error::OptimError;
use crate::nelder_mead::{NelderMead, SimplexMinimum};

/// An axis-aligned box of valid parameter vectors.
///
/// # Examples
///
/// ```
/// use edmac_optim::Bounds;
///
/// let b = Bounds::new(vec![(0.0, 1.0), (10.0, 20.0)]).unwrap();
/// let mut x = vec![-3.0, 15.0];
/// b.clamp(&mut x);
/// assert_eq!(x, [0.0, 15.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    ranges: Vec<(f64, f64)>,
}

impl Bounds {
    /// Creates bounds from `(lower, upper)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidInterval`] if any pair has
    /// `lower >= upper` or a non-finite endpoint, and
    /// [`OptimError::Dimension`] if empty.
    pub fn new(ranges: Vec<(f64, f64)>) -> Result<Bounds, OptimError> {
        if ranges.is_empty() {
            return Err(OptimError::Dimension {
                expected: 1,
                got: 0,
            });
        }
        for &(lo, hi) in &ranges {
            if !(lo.is_finite() && hi.is_finite() && lo < hi) {
                return Err(OptimError::InvalidInterval { a: lo, b: hi });
            }
        }
        Ok(Bounds { ranges })
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Returns `true` if there are no dimensions (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Lower bound of dimension `i`.
    pub fn lower(&self, i: usize) -> f64 {
        self.ranges[i].0
    }

    /// Upper bound of dimension `i`.
    pub fn upper(&self, i: usize) -> f64 {
        self.ranges[i].1
    }

    /// Width of dimension `i`.
    pub fn width(&self, i: usize) -> f64 {
        self.ranges[i].1 - self.ranges[i].0
    }

    /// The box center.
    pub fn center(&self) -> Vec<f64> {
        self.ranges
            .iter()
            .map(|&(lo, hi)| 0.5 * (lo + hi))
            .collect()
    }

    /// Clamps `x` into the box, component-wise.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the number of dimensions.
    pub fn clamp(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.ranges.len(), "dimension mismatch in clamp");
        for (xi, &(lo, hi)) in x.iter_mut().zip(&self.ranges) {
            *xi = xi.clamp(lo, hi);
        }
    }

    /// Returns `true` if `x` lies inside the box (inclusive).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.ranges.len()
            && x.iter()
                .zip(&self.ranges)
                .all(|(&xi, &(lo, hi))| (lo..=hi).contains(&xi))
    }

    /// The ranges as a slice of `(lower, upper)` pairs.
    pub fn ranges(&self) -> &[(f64, f64)] {
        &self.ranges
    }
}

/// Evaluates `f` on a uniform grid of `points_per_dim` samples per axis
/// and returns the best point.
///
/// A coarse exhaustive sweep is the global-phase workhorse for the 1–2
/// dimensional MAC parameter spaces: it cannot be trapped by the
/// non-convexity the paper notes for (P3), and its cost is transparent
/// (`points_per_dim^len`).
///
/// # Errors
///
/// * [`OptimError::Dimension`] if `points_per_dim < 2`.
/// * [`OptimError::Infeasible`] if `f` returned only NaN/infinite values
///   (e.g. every grid point violates a constraint folded into `f`).
pub fn grid_minimize<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    bounds: &Bounds,
    points_per_dim: usize,
) -> Result<SimplexMinimum, OptimError> {
    if points_per_dim < 2 {
        return Err(OptimError::Dimension {
            expected: 2,
            got: points_per_dim,
        });
    }
    let n = bounds.len();
    let total = points_per_dim.pow(n as u32);
    let mut best: Option<SimplexMinimum> = None;
    let mut x = vec![0.0; n];
    for flat in 0..total {
        let mut rem = flat;
        for (i, xi) in x.iter_mut().enumerate() {
            let k = rem % points_per_dim;
            rem /= points_per_dim;
            *xi = bounds.lower(i) + bounds.width(i) * k as f64 / (points_per_dim - 1) as f64;
        }
        let v = f(&x);
        if v.is_finite() && best.as_ref().is_none_or(|b| v < b.value) {
            best = Some(SimplexMinimum {
                x: x.clone(),
                value: v,
                iterations: flat + 1,
            });
        }
    }
    best.ok_or(OptimError::Infeasible)
}

/// Global-then-local search: grid sweep, then Nelder–Mead refinement
/// from the `starts` best grid cells.
///
/// # Errors
///
/// Propagates the underlying [`grid_minimize`] and
/// [`NelderMead::minimize`] errors; returns [`OptimError::Infeasible`]
/// if no finite value was ever seen.
pub fn multistart<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    bounds: &Bounds,
    points_per_dim: usize,
    starts: usize,
    local: NelderMead,
) -> Result<SimplexMinimum, OptimError> {
    if points_per_dim < 2 {
        return Err(OptimError::Dimension {
            expected: 2,
            got: points_per_dim,
        });
    }
    // Collect all finite grid points, keep the `starts` best.
    let n = bounds.len();
    let total = points_per_dim.pow(n as u32);
    let mut cells: Vec<(Vec<f64>, f64)> = Vec::new();
    let mut x = vec![0.0; n];
    for flat in 0..total {
        let mut rem = flat;
        for (i, xi) in x.iter_mut().enumerate() {
            let k = rem % points_per_dim;
            rem /= points_per_dim;
            *xi = bounds.lower(i) + bounds.width(i) * k as f64 / (points_per_dim - 1) as f64;
        }
        let v = f(&x);
        if v.is_finite() {
            cells.push((x.clone(), v));
        }
    }
    if cells.is_empty() {
        return Err(OptimError::Infeasible);
    }
    cells.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite values only"));
    cells.truncate(starts.max(1));

    let mut best: Option<SimplexMinimum> = None;
    for (start, coarse_value) in cells {
        let refined = local.minimize(&mut f, &start, bounds)?;
        let candidate = if refined.value <= coarse_value {
            refined
        } else {
            SimplexMinimum {
                x: start,
                value: coarse_value,
                iterations: refined.iterations,
            }
        };
        if best.as_ref().is_none_or(|b| candidate.value < b.value) {
            best = Some(candidate);
        }
    }
    best.ok_or(OptimError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_validate_inputs() {
        assert!(Bounds::new(vec![]).is_err());
        assert!(Bounds::new(vec![(1.0, 1.0)]).is_err());
        assert!(Bounds::new(vec![(0.0, f64::INFINITY)]).is_err());
        assert!(Bounds::new(vec![(0.0, 1.0)]).is_ok());
    }

    #[test]
    fn bounds_geometry() {
        let b = Bounds::new(vec![(0.0, 2.0), (-1.0, 1.0)]).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.center(), vec![1.0, 0.0]);
        assert_eq!(b.width(0), 2.0);
        assert!(b.contains(&[0.0, 1.0]));
        assert!(!b.contains(&[3.0, 0.0]));
        assert!(!b.contains(&[0.5]));
    }

    #[test]
    fn grid_finds_coarse_minimum() {
        let b = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let m = grid_minimize(|x| x[0] * x[0] + x[1] * x[1], &b, 41).unwrap();
        assert!(m.x[0].abs() < 0.11 && m.x[1].abs() < 0.11);
    }

    #[test]
    fn grid_skips_infeasible_regions() {
        // NaN left half-plane; the minimum of the feasible half is at 0.5.
        let b = Bounds::new(vec![(-1.0, 1.0)]).unwrap();
        let m = grid_minimize(
            |x| {
                if x[0] < 0.5 {
                    f64::NAN
                } else {
                    (x[0] - 0.5).powi(2)
                }
            },
            &b,
            21,
        )
        .unwrap();
        assert!((m.x[0] - 0.5).abs() < 0.06);
    }

    #[test]
    fn grid_reports_fully_infeasible() {
        let b = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        assert!(matches!(
            grid_minimize(|_| f64::NAN, &b, 11),
            Err(OptimError::Infeasible)
        ));
    }

    #[test]
    fn multistart_escapes_local_minimum() {
        // Double well with the deeper well at x = 2; a single local
        // search from the wrong basin would stall at x = -2.
        let f = |x: &[f64]| {
            let t = x[0];
            (t * t - 4.0).powi(2) + t
        };
        let b = Bounds::new(vec![(-4.0, 4.0)]).unwrap();
        let m = multistart(f, &b, 17, 3, NelderMead::default()).unwrap();
        assert!(
            (m.x[0] + 2.03).abs() < 0.05,
            "deeper well is near -2, got {}",
            m.x[0]
        );
    }

    #[test]
    fn multistart_never_worse_than_its_grid() {
        let f = |x: &[f64]| (x[0] - 0.123).powi(2);
        let b = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let grid = grid_minimize(f, &b, 9).unwrap();
        let multi = multistart(f, &b, 9, 2, NelderMead::default()).unwrap();
        assert!(multi.value <= grid.value);
    }
}
