//! Registry round-trip properties: for every registered suite, the
//! analytic side's derived configuration must feed the suite's own
//! simulator factory, on any deployment the scenario layer can
//! produce; lookup must be total and deterministic over the registered
//! names.

use edmac_mac::Deployment;
use edmac_net::Topology;
use edmac_proto::{ProtocolRegistry, ProtocolSuite};
use edmac_radio::{FrameSizes, Radio};
use edmac_sim::{SimConfig, Simulation, WakeMode};
use edmac_units::{Hertz, Seconds};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A panel of deployments spanning the families the registry must
/// serve: the reference and validation rings plus a realized disk.
fn deployments() -> Vec<(&'static str, Deployment)> {
    let mut rng = StdRng::seed_from_u64(7);
    let disk = Topology::uniform_disk(40, 2.2, &mut rng).expect("connected disk");
    let disk_env = Deployment::from_topology(&disk, Hertz::per_interval(Seconds::new(60.0)))
        .expect("disk deployment");
    vec![
        ("reference ring", Deployment::reference()),
        ("validation ring", Deployment::validation()),
        ("realized disk", disk_env),
    ]
}

#[test]
fn every_suite_round_trips_its_own_configuration() {
    // The heart of the "cannot diverge by construction" claim: the
    // record each suite's model derives is accepted by the same
    // suite's simulator factory, and the product simulates under the
    // engine on a real topology.
    let registry = ProtocolRegistry::builtin();
    let mut rng = StdRng::seed_from_u64(7);
    let topology = Topology::uniform_disk(40, 2.2, &mut rng).expect("connected disk");
    for suite in registry.iter() {
        for (label, env) in deployments() {
            let model = suite.model();
            assert_eq!(model.name(), suite.name(), "{label}");
            let config = model.configure(&env);
            assert_eq!(config.protocol(), suite.name(), "{label}");
            let bounds = model.bounds(&env);
            let x = vec![bounds.lower(0); model.dim()];
            let protocol = suite.simulator(&config, &x);
            assert_eq!(protocol.name(), suite.name(), "{label}");
        }
        // And the built protocol drives the engine end to end.
        let env = Deployment::reference();
        let protocol = suite.simulator_for(&env, &suite.reference_params());
        let report = Simulation::build(
            &topology,
            Radio::cc2420(),
            FrameSizes::default(),
            protocol.as_ref(),
            SimConfig {
                duration: Seconds::new(90.0),
                sample_period: Seconds::new(30.0),
                warmup: Seconds::new(15.0),
                seed: 5,
                scheduling: WakeMode::Coarse,
            },
        )
        .unwrap_or_else(|e| {
            panic!(
                "{}: engine rejected the suite's protocol: {e}",
                suite.name()
            )
        })
        .run();
        assert_eq!(report.protocol(), suite.name());
        assert!(
            report.delivery_ratio() > 0.5,
            "{}: delivery {}",
            suite.name(),
            report.delivery_ratio()
        );
    }
}

#[test]
fn name_lookup_is_total_and_deterministic() {
    let registry = ProtocolRegistry::builtin();
    let names = registry.names();
    // Total: every listed name resolves, to the suite carrying it.
    for name in &names {
        assert_eq!(registry.get(name).map(|s| s.name()), Some(*name));
        assert_eq!(registry.suite(name).unwrap().name(), *name);
    }
    // Deterministic: iteration order and lookups are stable across
    // independently built registries.
    let again = ProtocolRegistry::builtin();
    assert_eq!(names, again.names());
    for name in &names {
        assert_eq!(
            registry.get(name).map(|s| s.name()),
            again.get(name).map(|s| s.name())
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_names_never_panic_and_misses_list_the_registry(idx in 0usize..8, suffix in 0u32..1000) {
        // Lookup over arbitrary-ish names: either a normalized hit on
        // a registered suite or a structured miss naming the registry.
        let spellings = ["x-mac", "XMAC", "dmac", "l_mac", "scpmac", "CSMA", "b-mac", "tdma"];
        let name = if suffix % 3 == 0 {
            spellings[idx].to_string()
        } else {
            format!("{}{}", spellings[idx], suffix)
        };
        let registry = ProtocolRegistry::builtin();
        match registry.suite(&name) {
            Ok(suite) => prop_assert!(registry.names().contains(&suite.name())),
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(msg.contains(&name) && msg.contains("X-MAC"));
            }
        }
    }
}

// Object-safety and marker-trait contract, checked at compile time:
// suites and simulator protocols must remain usable as shared,
// thread-safe trait objects (the study worker pool depends on it).
#[test]
fn trait_objects_are_shareable_across_threads() {
    fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<dyn ProtocolSuite>();
    assert_send_sync::<std::sync::Arc<dyn ProtocolSuite>>();
    assert_send_sync::<dyn edmac_sim::SimProtocol>();
    assert_send_sync::<Box<dyn edmac_sim::SimProtocol>>();

    // And a suite handle actually crosses a thread boundary.
    let suite = ProtocolRegistry::builtin().suite("LMAC").unwrap();
    let name = std::thread::spawn(move || suite.model().name())
        .join()
        .expect("worker thread");
    assert_eq!(name, "LMAC");
}
