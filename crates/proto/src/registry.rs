//! The [`ProtocolRegistry`]: deterministic, name-addressable storage
//! of [`ProtocolSuite`]s.

use crate::csma::CsmaSuite;
use crate::suite::{DmacSuite, LmacSuite, ProtocolSuite, ScpSuite, XmacSuite};
use edmac_mac::MacModel;
use std::sync::Arc;

/// The paper's protocol trio, in figure order — the default panel of
/// the `study` and figure binaries.
pub const PAPER_TRIO: [&str; 3] = ["X-MAC", "DMAC", "LMAC"];

/// The trio plus the SCP-MAC extension — the default panel of the
/// `scenarios` binary. The CSMA demo suite is registered but *not*
/// part of any default panel; select it explicitly with
/// `--protocols`.
pub const STANDARD_PANEL: [&str; 4] = ["X-MAC", "DMAC", "LMAC", "SCP-MAC"];

/// The paper trio's analytic models in figure order, resolved through
/// [`ProtocolRegistry::builtin`] — the one panel constructor behind
/// `edmac_study::models_for` and the figure binaries.
pub fn paper_trio_models() -> Vec<Box<dyn MacModel>> {
    ProtocolRegistry::builtin()
        .select(&PAPER_TRIO)
        .expect("the built-in registry carries the paper trio")
        .iter()
        .map(|suite| suite.model())
        .collect()
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// A name lookup failed; carries the registered names so CLI
    /// surfaces can print them.
    UnknownProtocol {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, in registration order.
        registered: Vec<&'static str>,
    },
    /// A suite was registered under a name that (after normalization)
    /// is already taken.
    DuplicateName {
        /// The colliding canonical name.
        name: &'static str,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::UnknownProtocol { name, registered } => write!(
                f,
                "unknown protocol '{name}' (registered: {})",
                registered.join(", ")
            ),
            ProtoError::DuplicateName { name } => {
                write!(f, "a suite named '{name}' is already registered")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Lookup normalization: case-insensitive, separator-insensitive
/// (`x-mac`, `XMAC` and `x_mac` all resolve to `X-MAC`).
fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| *c != '-' && *c != '_')
        .flat_map(char::to_lowercase)
        .collect()
}

/// An ordered, name-addressable set of protocol suites.
///
/// Ordering is **registration order** and is part of the contract:
/// panels resolved through a registry iterate deterministically, which
/// is what keeps study artifacts byte-identical across runs. Lookup is
/// total over registered names and tolerant of spelling (see
/// [`ProtocolRegistry::get`]).
#[derive(Debug, Clone, Default)]
pub struct ProtocolRegistry {
    suites: Vec<Arc<dyn ProtocolSuite>>,
}

impl ProtocolRegistry {
    /// An empty registry (downstream crates populate it with
    /// [`ProtocolRegistry::register`]).
    pub fn new() -> ProtocolRegistry {
        ProtocolRegistry::default()
    }

    /// Every built-in suite, in the canonical order: the paper trio
    /// (X-MAC, DMAC, LMAC), the SCP-MAC extension, then the non-paper
    /// CSMA demo suite.
    pub fn builtin() -> ProtocolRegistry {
        let mut registry = ProtocolRegistry::new();
        for suite in [
            Arc::new(XmacSuite) as Arc<dyn ProtocolSuite>,
            Arc::new(DmacSuite),
            Arc::new(LmacSuite),
            Arc::new(ScpSuite),
            Arc::new(CsmaSuite),
        ] {
            registry
                .register(suite)
                .expect("built-in suite names are distinct");
        }
        registry
    }

    /// Registers `suite` at the end of the iteration order.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::DuplicateName`] when a registered suite's
    /// normalized name collides.
    pub fn register(&mut self, suite: Arc<dyn ProtocolSuite>) -> Result<(), ProtoError> {
        let name = suite.name();
        if self.get(name).is_some() {
            return Err(ProtoError::DuplicateName { name });
        }
        self.suites.push(suite);
        Ok(())
    }

    /// Looks a suite up by name (normalized: `xmac`, `X-MAC` and
    /// `x_mac` are the same suite).
    pub fn get(&self, name: &str) -> Option<&dyn ProtocolSuite> {
        let wanted = normalize(name);
        self.suites
            .iter()
            .find(|s| normalize(s.name()) == wanted)
            .map(|s| s.as_ref())
    }

    /// Like [`ProtocolRegistry::get`], returning a shared handle and a
    /// listing error instead of `None`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::UnknownProtocol`] naming every registered
    /// suite.
    pub fn suite(&self, name: &str) -> Result<Arc<dyn ProtocolSuite>, ProtoError> {
        let wanted = normalize(name);
        self.suites
            .iter()
            .find(|s| normalize(s.name()) == wanted)
            .cloned()
            .ok_or_else(|| ProtoError::UnknownProtocol {
                name: name.to_string(),
                registered: self.names(),
            })
    }

    /// Resolves a panel of names into suites, preserving the *request*
    /// order (so `--protocols lmac,xmac` sweeps LMAC first).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::UnknownProtocol`] on the first name that
    /// does not resolve.
    pub fn select<S: AsRef<str>>(
        &self,
        names: &[S],
    ) -> Result<Vec<Arc<dyn ProtocolSuite>>, ProtoError> {
        names.iter().map(|n| self.suite(n.as_ref())).collect()
    }

    /// The canonical names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.suites.iter().map(|s| s.name()).collect()
    }

    /// Iterates the suites in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn ProtocolSuite> {
        self.suites.iter().map(|s| s.as_ref())
    }

    /// Number of registered suites.
    pub fn len(&self) -> usize {
        self.suites.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.suites.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_order_is_canonical() {
        let names = ProtocolRegistry::builtin().names();
        assert_eq!(names, ["X-MAC", "DMAC", "LMAC", "SCP-MAC", "CSMA"]);
        assert_eq!(&names[..3], PAPER_TRIO);
        assert_eq!(&names[..4], STANDARD_PANEL);
    }

    #[test]
    fn lookup_normalizes_spelling() {
        let registry = ProtocolRegistry::builtin();
        for spelling in ["X-MAC", "xmac", "x_mac", "XMAC", "x-Mac"] {
            assert_eq!(
                registry.get(spelling).map(|s| s.name()),
                Some("X-MAC"),
                "{spelling}"
            );
        }
        assert!(registry.get("b-mac").is_none());
    }

    #[test]
    fn unknown_names_list_the_registry() {
        let err = ProtocolRegistry::builtin().suite("mesh").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("mesh") && msg.contains("X-MAC") && msg.contains("CSMA"));
    }

    #[test]
    fn select_preserves_request_order() {
        let registry = ProtocolRegistry::builtin();
        let picked = registry.select(&["lmac", "csma", "X-MAC"]).unwrap();
        let names: Vec<&str> = picked.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["LMAC", "CSMA", "X-MAC"]);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut registry = ProtocolRegistry::builtin();
        let err = registry.register(Arc::new(XmacSuite)).unwrap_err();
        assert_eq!(err, ProtoError::DuplicateName { name: "X-MAC" });
    }
}
