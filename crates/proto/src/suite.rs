//! The [`ProtocolSuite`] trait and the built-in suites for the paper's
//! protocols.

use edmac_mac::{Deployment, Dmac, Lmac, MacModel, ProtocolConfig, Scp, Xmac};
use edmac_sim::{DmacSim, LmacSim, ScpSim, SimProtocol, XmacSim};
use edmac_units::Seconds;

/// One MAC protocol, seen whole: the analytic model, the structural
/// configuration it derives per deployment, and the simulator node
/// factory that consumes the same record.
///
/// Object-safe and `Send + Sync`, so registries of
/// `Arc<dyn ProtocolSuite>` can be shared across study worker threads.
/// Implementations are stateless descriptors — both factories return
/// fresh boxed instances.
///
/// # Contract
///
/// * [`ProtocolSuite::name`] equals the name of the model
///   [`ProtocolSuite::model`] returns and the name of every simulator
///   protocol [`ProtocolSuite::simulator`] builds — one protocol, one
///   label, everywhere.
/// * [`ProtocolSuite::simulator`] accepts any [`ProtocolConfig`] its
///   own model's `configure` can produce, for any deployment. The
///   round trip `suite.simulator(&suite.model().configure(env), x)`
///   must always succeed (property-tested in `tests/registry.rs`).
/// * The tuned parameter vector `x` has the model's arity and meaning
///   (`model.parameter_names()`); suites map it onto the simulator's
///   tunables.
pub trait ProtocolSuite: std::fmt::Debug + Send + Sync {
    /// The protocol's canonical display name (registry lookup key,
    /// artifact label).
    fn name(&self) -> &'static str;

    /// A fresh instance of the analytic model.
    fn model(&self) -> Box<dyn MacModel>;

    /// Builds the simulator protocol from the structural record
    /// `config` (as derived by this suite's model) at tuned parameter
    /// vector `x`.
    ///
    /// # Panics
    ///
    /// Implementations index `x` by the model's parameter order and
    /// may panic on a wrong-arity vector; validate against
    /// `self.model().dim()` when `x` is not produced by this suite's
    /// own model (the analytic side rejects such vectors with
    /// `MacError::Arity`).
    fn simulator(&self, config: &ProtocolConfig, x: &[f64]) -> Box<dyn SimProtocol>;

    /// Derives the structural record from `env` through this suite's
    /// own model and builds the simulator protocol in one step — the
    /// one-liner most callers want.
    ///
    /// # Panics
    ///
    /// Like [`ProtocolSuite::simulator`], on a wrong-arity `x`.
    fn simulator_for(&self, env: &Deployment, x: &[f64]) -> Box<dyn SimProtocol> {
        self.simulator(&self.model().configure(env), x)
    }

    /// A representative tuned parameter vector: the fixed operating
    /// point panel-style sweeps (the `scenarios` binary) run this
    /// protocol at.
    fn reference_params(&self) -> Vec<f64>;
}

/// The X-MAC suite (asynchronous preamble sampling; tunable: wake-up
/// interval `Tw`).
#[derive(Debug, Clone, Copy, Default)]
pub struct XmacSuite;

impl ProtocolSuite for XmacSuite {
    fn name(&self) -> &'static str {
        "X-MAC"
    }

    fn model(&self) -> Box<dyn MacModel> {
        Box::new(Xmac::default())
    }

    fn simulator(&self, _config: &ProtocolConfig, x: &[f64]) -> Box<dyn SimProtocol> {
        Box::new(XmacSim::new(Seconds::new(x[0])))
    }

    fn reference_params(&self) -> Vec<f64> {
        vec![0.100]
    }
}

/// The DMAC suite (staggered slot ladder; tunable: cycle period `T`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DmacSuite;

impl ProtocolSuite for DmacSuite {
    fn name(&self) -> &'static str {
        "DMAC"
    }

    fn model(&self) -> Box<dyn MacModel> {
        Box::new(Dmac::default())
    }

    fn simulator(&self, _config: &ProtocolConfig, x: &[f64]) -> Box<dyn SimProtocol> {
        Box::new(DmacSim::new(Seconds::new(x[0])))
    }

    fn reference_params(&self) -> Vec<f64> {
        vec![0.500]
    }
}

/// The LMAC suite (frame-based TDMA; tunable: slot length `Ts`). The
/// simulated frame size always equals the analytic one: ring
/// deployments keep the calibrated default, realized topologies get
/// the chromatic-need-derived frame from the structural record.
#[derive(Debug, Clone, Copy, Default)]
pub struct LmacSuite;

impl ProtocolSuite for LmacSuite {
    fn name(&self) -> &'static str {
        "LMAC"
    }

    fn model(&self) -> Box<dyn MacModel> {
        Box::new(Lmac::default())
    }

    fn simulator(&self, config: &ProtocolConfig, x: &[f64]) -> Box<dyn SimProtocol> {
        let mut sim = LmacSim::new(Seconds::new(x[0]));
        if let ProtocolConfig::Lmac { frame_slots, .. } = *config {
            sim.frame_slots = frame_slots;
        }
        Box::new(sim)
    }

    fn reference_params(&self) -> Vec<f64> {
        vec![0.010]
    }
}

/// The SCP-MAC suite (scheduled channel polling, the paper's citation
/// 10; tunable: poll period `Tp`). The structural sync period reaches
/// both sides through the record.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScpSuite;

impl ProtocolSuite for ScpSuite {
    fn name(&self) -> &'static str {
        "SCP-MAC"
    }

    fn model(&self) -> Box<dyn MacModel> {
        Box::new(Scp::default())
    }

    fn simulator(&self, config: &ProtocolConfig, x: &[f64]) -> Box<dyn SimProtocol> {
        let mut sim = ScpSim::new(Seconds::new(x[0]));
        if let ProtocolConfig::Scp { sync_period_ms } = *config {
            // The analytic config's period, not the simulator's
            // default: a non-default sync period must reach both sides.
            sim.sync_period = Seconds::from_millis(sync_period_ms as f64);
        }
        Box::new(sim)
    }

    fn reference_params(&self) -> Vec<f64> {
        vec![0.250]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_match_their_models() {
        let suites: [&dyn ProtocolSuite; 4] = [&XmacSuite, &DmacSuite, &LmacSuite, &ScpSuite];
        for suite in suites {
            assert_eq!(suite.name(), suite.model().name());
            assert_eq!(
                suite.reference_params().len(),
                suite.model().dim(),
                "{}: reference point arity",
                suite.name()
            );
        }
    }

    #[test]
    fn lmac_simulator_inherits_the_derived_frame() {
        let config = ProtocolConfig::Lmac {
            frame_slots: 31,
            slot_demand: Some(25),
        };
        let sim = LmacSuite.simulator(&config, &[0.01]);
        assert_eq!(
            format!("{sim:?}"),
            format!(
                "{:?}",
                LmacSim {
                    slot: Seconds::new(0.01),
                    frame_slots: 31,
                }
            )
        );
    }

    #[test]
    fn scp_simulator_inherits_the_sync_period() {
        let config = ProtocolConfig::Scp {
            sync_period_ms: 45_000,
        };
        let sim = ScpSuite.simulator(&config, &[0.2]);
        assert!(format!("{sim:?}").contains("45"));
    }
}
