//! The always-on CSMA/CA suite — the registry's openness proof.
//!
//! This protocol is *not* in the paper: it never duty-cycles, so it
//! has no energy–delay bargaining tension to speak of (energy is
//! pinned near `P_listen` around the clock while latency is a thin
//! slice of backoff) — which is exactly the baseline the duty-cycled
//! families exist to beat. Its value here is architectural: the
//! analytic model, the simulator node and the suite all live in this
//! crate, built **only** on the public `edmac-mac`/`edmac-sim`
//! surfaces ([`MacModel`], [`MacNode`] + [`Ctx`], [`SimProtocol`]),
//! demonstrating that registering a new MAC requires no edits to the
//! model crate, the engine, the study harness or any binary. Select it
//! with `--protocols csma` in the `scenarios`/`study` binaries.
//!
//! # Model
//!
//! * **Energy** — the radio listens whenever it is not transmitting or
//!   receiving: `Ecs = (1 − busy_airtime)·P_listen`,
//!   `Etx = F_out·t_data·P_tx`, `Erx = F_I·t_data·P_rx`,
//!   `Eovr = (F_B − F_I)⁺·t_data·P_rx`, no sync traffic, no sleep.
//! * **Collisions** — two backlogged contenders drawing uniform
//!   backoffs in `(0, W)` land within one data airtime of each other
//!   with probability `min(1, 2·t_data/W)`; discounting each nominal
//!   rival by the chance it is actually mid-cycle (`f_bg·(W+t_data)`)
//!   gives the per-attempt loss [`p_collision`]. Expected attempts
//!   `1/(1−p)` (capped) scale the data energy and the per-hop
//!   latency, which bends the window frontier: shrinking `W` below
//!   `2·t_data` saturates the vulnerable period and retries blow up,
//!   so the latency-optimal window is interior, not the lower bound.
//! * **Latency** — per hop, half the contention window plus the data
//!   airtime, times the expected attempts:
//!   `L = Σ_d attempts_d·(W/2 + t_data)`, plus the standard
//!   M/D/1-style window-conditional queueing excess on burst workloads
//!   (re-derived here from the public [`Workload::burst_excess`] hook
//!   — external models can be fully workload-aware).
//! * **Utilization** — bottleneck airtime `(F_B + F_out)·t_data`.
//!
//! # Simulator node
//!
//! Always listening; a queued packet draws a uniform backoff in
//! `(0, W)`, re-drawing while the channel is busy, then ships the data
//! frame to the parent. No acknowledgements and no retries: what
//! contention loses stays lost (the delivery column of the `scenarios`
//! binary shows the price next to the duty-cycled protocols).
//!
//! [`MacNode`]: edmac_sim::MacNode
//! [`Ctx`]: edmac_sim::Ctx
//! [`Workload::burst_excess`]: edmac_mac::Workload::burst_excess

use crate::suite::ProtocolSuite;
use edmac_mac::{Deployment, MacError, MacModel, MacPerformance, ProtocolConfig};
use edmac_optim::Bounds;
use edmac_radio::{Cause, EnergyBreakdown, Mode};
use edmac_sim::{Ctx, Frame, FrameKind, MacNode, Packet, SimConfig, SimProtocol};
use edmac_units::Seconds;
use std::collections::VecDeque;

/// The analytic always-on CSMA/CA model. Tunable: the contention
/// window `W` (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsmaMac {
    /// Smallest admissible contention window.
    pub min_window: Seconds,
    /// Largest admissible contention window.
    pub max_window: Seconds,
    /// Capacity cap on bottleneck utilization.
    pub max_utilization: f64,
}

impl Default for CsmaMac {
    /// `W ∈ [2 ms, 200 ms]`, utilization cap 0.75.
    fn default() -> CsmaMac {
        CsmaMac {
            min_window: Seconds::from_millis(2.0),
            max_window: Seconds::from_millis(200.0),
            max_utilization: 0.75,
        }
    }
}

/// Retry inflation is capped here: past ~75% loss the first-order
/// geometric series stops being a model and starts being a pole.
const MAX_ATTEMPTS: f64 = 4.0;

/// First-order per-attempt collision probability of one CSMA data
/// transmission (all quantities in base units: seconds, hertz).
///
/// Two backlogged rivals drawing uniform backoffs in `(0, window)`
/// collide when they land within one `airtime` of each other —
/// probability `q = min(1, 2·airtime/window)`. Each of the
/// `contenders − 1` nominal rivals is actually mid-cycle only with
/// probability `background·(window + airtime)`, so the attempt
/// survives `active = (contenders−1)·min(1, background·(window+airtime))`
/// effective rivals: `p = 1 − (1 − q)^active`.
///
/// Degenerate inputs are safe: no rivals or no background traffic
/// give `p = 0`; a window at or below `2·airtime` with any active
/// rival gives `p = 1` (the saturated vulnerable period).
pub fn p_collision(window: f64, airtime: f64, contenders: usize, background: f64) -> f64 {
    if window.is_nan()
        || background.is_nan()
        || window <= 0.0
        || background <= 0.0
        || contenders <= 1
    {
        return 0.0;
    }
    let vulnerable = (2.0 * airtime / window).min(1.0);
    let active = (contenders as f64 - 1.0) * (background * (window + airtime)).min(1.0);
    1.0 - (1.0 - vulnerable).powf(active)
}

/// Expected transmission attempts at per-attempt loss `p`, capped at
/// [`MAX_ATTEMPTS`].
fn attempts(p: f64) -> f64 {
    if p < 1.0 {
        (1.0 / (1.0 - p)).min(MAX_ATTEMPTS)
    } else {
        MAX_ATTEMPTS
    }
}

/// The M/D/1-style in-window mean wait (the same first-order form the
/// built-in models use): stable-regime `ρ·s/(2(1−ρ))` capped by the
/// transient bound `ρ·window/2`, which takes over at `ρ ≥ 1`.
fn window_wait(rho: f64, service: f64, window: f64) -> f64 {
    if rho <= 0.0 {
        return 0.0;
    }
    let transient = rho * window / 2.0;
    if rho < 1.0 {
        (rho * service / (2.0 * (1.0 - rho))).min(transient)
    } else {
        transient
    }
}

impl MacModel for CsmaMac {
    fn name(&self) -> &'static str {
        "CSMA"
    }

    fn parameter_names(&self) -> &'static [&'static str] {
        &["contention_window"]
    }

    fn bounds(&self, _env: &Deployment) -> Bounds {
        Bounds::new(vec![(self.min_window.value(), self.max_window.value())])
            .expect("structural bounds are validated by construction")
    }

    fn configure(&self, env: &Deployment) -> ProtocolConfig {
        // Mean contenders sharing the bottleneck collision domain:
        // background flows per own flow at ring 1.
        let contenders = match (env.traffic.f_bg(1), env.traffic.f_out(1)) {
            (Ok(bg), Ok(out)) if out.value() > 0.0 => {
                (bg.value() / out.value()).ceil().max(1.0) as usize
            }
            _ => 1,
        };
        ProtocolConfig::Csma { contenders }
    }

    fn performance(&self, x: &[f64], env: &Deployment) -> Result<MacPerformance, MacError> {
        if x.len() != 1 {
            return Err(MacError::Arity {
                expected: 1,
                got: x.len(),
            });
        }
        let w = x[0];
        if !(w.is_finite() && w > 0.0) {
            return Err(MacError::InvalidParameter {
                name: "contention_window",
                value: w,
                reason: "must be a positive, finite duration in seconds".into(),
            });
        }

        let p = &env.radio.power;
        let t_data = env.radio.airtime(env.frames.data).value();

        // The bottleneck fold, re-derived on the public surface: max
        // energy rate wins, outermost ring wins ties (the built-in
        // models' `RingFold` semantics).
        let mut best: Option<(usize, EnergyBreakdown, f64)> = None;
        let mut utilization: f64 = 0.0;
        let mut latency_attempts: f64 = 0.0;
        for d in env.traffic.rings() {
            let f_out = env.traffic.f_out(d)?.value();
            let f_in = env.traffic.f_in(d)?.value();
            let f_bg = env.traffic.f_bg(d)?.value();

            // The ring's collision domain: background flows per own
            // flow (the same count `configure` snapshots at ring 1).
            let contenders = if f_out > 0.0 {
                (f_bg / f_out).ceil().max(1.0) as usize
            } else {
                1
            };
            let tries = attempts(p_collision(w, t_data, contenders, f_bg));
            latency_attempts += tries;

            let mut e = EnergyBreakdown::ZERO;
            e.tx = p.tx * Seconds::new(t_data * f_out * tries);
            e.rx = p.rx * Seconds::new(t_data * f_in * tries);
            e.overhearing = p.rx * Seconds::new(t_data * (f_bg - f_in).max(0.0));
            let airtime = (t_data * (f_out + f_bg) * tries).clamp(0.0, 1.0);
            e.carrier_sense = p.listen * Seconds::new(1.0 - airtime);

            let total = e.total().value();
            match best {
                Some((_, _, b)) if b > total => {}
                _ => best = Some((d, e, total)),
            }
            utilization = utilization.max((f_bg + f_out) * t_data);
        }
        let (bottleneck_ring, rates, _) = best.expect("deployments have depth >= 1");

        // Always on: the whole epoch is charged at the operating
        // rates; the sleep bucket stays empty.
        let breakdown = rates.scaled(env.epoch.value());

        let per_hop = w / 2.0 + t_data;
        let excess = if env.traffic.burst().is_some() {
            env.traffic.burst_excess(|scale, window| {
                env.traffic
                    .rings()
                    .map(|d| {
                        // The hop "server" holds a packet for one
                        // backoff-plus-airtime; on a shared always-on
                        // channel the background flows occupy it too,
                        // so the offered load is F_out + F_B (the same
                        // contention accounting the built-in X-MAC /
                        // SCP models use).
                        let load = (env.traffic.f_out(d).expect("ring in range").value()
                            + env.traffic.f_bg(d).expect("ring in range").value())
                            * scale;
                        window_wait(load * per_hop, per_hop, window.value())
                    })
                    .sum()
            })
        } else {
            0.0
        };
        // One `(W/2 + t_data)` slice per expected attempt per hop:
        // collision-free this is exactly the old `depth · per_hop`.
        let latency = Seconds::new(latency_attempts * per_hop + excess);

        Ok(MacPerformance {
            energy: breakdown.total(),
            breakdown,
            latency,
            utilization,
            bottleneck_ring,
        })
    }

    fn utilization_cap(&self) -> f64 {
        self.max_utilization
    }
}

/// Simulator configuration of the always-on CSMA node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsmaSim {
    /// Contention window `W`: backoffs draw uniformly from `(0, W)`.
    pub contention_window: Seconds,
}

impl SimProtocol for CsmaSim {
    fn name(&self) -> &'static str {
        "CSMA"
    }

    fn build_nodes(
        &self,
        graph: &edmac_net::Graph,
        _tree: &edmac_net::RoutingTree,
        _config: &SimConfig,
    ) -> Result<Vec<Box<dyn MacNode>>, edmac_net::NetError> {
        Ok(graph
            .nodes()
            .map(|_| Box::new(CsmaNode::new(self.contention_window)) as Box<dyn MacNode>)
            .collect())
    }
}

const TAG_BACKOFF: u32 = 2;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Listening, nothing queued (or radio still starting up).
    Idle,
    /// A backoff timer is pending for the head-of-queue packet.
    BackingOff,
    /// Our data frame is on the air.
    Sending,
}

/// The always-on CSMA/CA per-node state machine.
#[derive(Debug)]
struct CsmaNode {
    contention_window: Seconds,
    phase: Phase,
    queue: VecDeque<Packet>,
}

impl CsmaNode {
    fn new(contention_window: Seconds) -> CsmaNode {
        CsmaNode {
            contention_window,
            phase: Phase::Idle,
            queue: VecDeque::new(),
        }
    }

    fn arm_backoff(&mut self, ctx: &mut Ctx<'_>) {
        if self.phase != Phase::Idle || self.queue.is_empty() || ctx.is_sink() {
            return;
        }
        self.phase = Phase::BackingOff;
        let backoff = Seconds::new(ctx.random_range(0.0, 1.0) * self.contention_window.value());
        ctx.set_timer(backoff, TAG_BACKOFF);
    }
}

impl MacNode for CsmaNode {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        // Power up once; the radio never sleeps again.
        ctx.wake(Cause::CarrierSense);
    }

    fn on_radio_ready(&mut self, ctx: &mut Ctx<'_>) {
        // Anything sampled during the startup ramp can now contend.
        self.arm_backoff(ctx);
    }

    fn on_generate(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        self.queue.push_back(packet);
        self.arm_backoff(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u32, _id: u64) {
        if tag != TAG_BACKOFF || self.phase != Phase::BackingOff {
            return;
        }
        // CCA at the end of the backoff: a busy channel (or a frame we
        // are mid-receiving, or a radio not yet up) re-draws.
        if ctx.channel_busy() || ctx.is_receiving() || ctx.mode() != Mode::Listen {
            self.phase = Phase::Idle;
            self.arm_backoff(ctx);
            return;
        }
        let packet = self.queue.pop_front().expect("backoff implies a packet");
        let parent = ctx.parent().expect("non-sink nodes have parents");
        self.phase = Phase::Sending;
        ctx.send(FrameKind::Data, Some(parent), Some(packet));
    }

    fn on_tx_done(&mut self, ctx: &mut Ctx<'_>) {
        self.phase = Phase::Idle;
        self.arm_backoff(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) {
        let me = ctx.me();
        if frame.kind == FrameKind::Data && frame.addressed_to(me) {
            let mut packet = frame.packet.expect("data frames carry packets");
            packet.hops += 1;
            if ctx.is_sink() {
                ctx.deliver(packet);
            } else {
                self.queue.push_back(packet);
                self.arm_backoff(ctx);
            }
        }
    }
}

/// The always-on CSMA/CA suite (non-paper; registered by
/// [`ProtocolRegistry::builtin`](crate::ProtocolRegistry::builtin) but
/// in no default panel).
#[derive(Debug, Clone, Copy, Default)]
pub struct CsmaSuite;

impl ProtocolSuite for CsmaSuite {
    fn name(&self) -> &'static str {
        "CSMA"
    }

    fn model(&self) -> Box<dyn MacModel> {
        Box::new(CsmaMac::default())
    }

    fn simulator(&self, _config: &ProtocolConfig, x: &[f64]) -> Box<dyn SimProtocol> {
        Box::new(CsmaSim {
            contention_window: Seconds::new(x[0]),
        })
    }

    fn reference_params(&self) -> Vec<f64> {
        vec![0.005]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edmac_sim::{SimConfig, Simulation, WakeMode};
    use edmac_units::Joules;

    #[test]
    fn model_energy_is_listen_dominated_and_flat_in_the_window() {
        let env = Deployment::validation();
        let model = CsmaMac::default();
        let a = model.performance(&[0.005], &env).unwrap();
        let b = model.performance(&[0.050], &env).unwrap();
        // Always-on: energy is pinned near P_listen · epoch either way.
        let floor = (env.radio.power.listen * env.epoch).value();
        assert!(a.energy.value() > 0.9 * floor, "{:?}", a.energy);
        assert!((a.energy.value() - b.energy.value()).abs() < 0.02 * a.energy.value());
        // ... while latency grows with the window.
        assert!(b.latency > a.latency);
        assert_eq!(a.breakdown.sleep, Joules::ZERO, "no sleep bucket");
        assert_eq!(a.breakdown.sync_tx, Joules::ZERO, "no sync traffic");
    }

    #[test]
    fn collision_term_bends_a_non_degenerate_window_frontier() {
        // The term itself: zero without rivals or background traffic,
        // monotone in contenders, relieved by wider windows, saturated
        // below the vulnerable period.
        assert_eq!(p_collision(0.005, 0.0016, 1, 0.5), 0.0);
        assert_eq!(p_collision(0.005, 0.0016, 8, 0.0), 0.0);
        let p2 = p_collision(0.005, 0.0016, 2, 0.5);
        let p8 = p_collision(0.005, 0.0016, 8, 0.5);
        assert!(0.0 < p2 && p2 < p8 && p8 < 1.0, "p2 {p2} p8 {p8}");
        assert!(
            p_collision(0.050, 0.0016, 8, 0.5) < p8,
            "wider window must relieve contention"
        );
        assert_eq!(
            p_collision(0.003, 0.0016, 8, 0.5),
            1.0,
            "W ≤ 2·t_data saturates the vulnerable period"
        );

        // The frontier it induces: with retries charged per hop, the
        // latency-optimal window is interior — the saturated floor
        // (W = 2 ms < 2·t_data) and the wide ceiling both lose to a
        // moderate window. Pinned so the term cannot silently
        // degenerate back to the monotone `W/2` frontier, where the
        // optimizer would always slam into the lower bound.
        let env = Deployment::validation();
        let model = CsmaMac::default();
        let floor = model.performance(&[0.002], &env).unwrap();
        let mid = model.performance(&[0.005], &env).unwrap();
        let wide = model.performance(&[0.050], &env).unwrap();
        assert!(
            floor.latency > mid.latency,
            "saturated floor {:?} must beat mid {:?}",
            floor.latency,
            mid.latency
        );
        assert!(wide.latency > mid.latency);
        // Retries show up in the energy ledger too: the saturated
        // floor pays capped MAX_ATTEMPTS data airtime.
        assert!(floor.breakdown.tx > mid.breakdown.tx);
    }

    #[test]
    fn model_rejects_bad_parameters() {
        let env = Deployment::validation();
        let model = CsmaMac::default();
        assert!(model.performance(&[], &env).is_err());
        assert!(model.performance(&[0.0], &env).is_err());
        assert!(model.performance(&[f64::NAN], &env).is_err());
    }

    #[test]
    fn configure_counts_bottleneck_contenders() {
        let model = CsmaMac::default();
        let config = model.configure(&Deployment::validation());
        let ProtocolConfig::Csma { contenders } = config else {
            panic!("CSMA configures the Csma record, got {config}");
        };
        assert!(contenders >= 1);
        assert_eq!(config.protocol(), "CSMA");
    }

    #[test]
    fn simulated_ring_delivers_with_always_on_radios() {
        let cfg = SimConfig {
            duration: Seconds::new(300.0),
            sample_period: Seconds::new(30.0),
            warmup: Seconds::new(30.0),
            seed: 11,
            scheduling: WakeMode::Coarse,
        };
        let protocol = CsmaSim {
            contention_window: Seconds::from_millis(5.0),
        };
        let report = Simulation::ring(3, 4, &protocol, cfg).unwrap().run();
        assert_eq!(report.protocol(), "CSMA");
        assert!(
            report.delivery_ratio() > 0.9,
            "always-on delivery {}",
            report.delivery_ratio()
        );
        // Always-on: every node is busy essentially the whole run.
        for stats in report.per_node() {
            let duty = stats.busy.value() / cfg.duration.value();
            assert!(duty > 0.95, "node {} duty {duty}", stats.node);
        }
    }

    #[test]
    fn simulated_energy_tracks_the_model_at_an_unsaturated_point() {
        // The suite's own evidence chain: analytic vs packet-level on
        // the validation ring, same comparator the paper trio uses.
        let env = Deployment::validation();
        let model = CsmaMac::default();
        let x = 0.005;
        let perf = model.performance(&[x], &env).unwrap();
        let cfg = SimConfig {
            duration: Seconds::new(1_200.0),
            sample_period: Seconds::new(80.0),
            warmup: Seconds::new(200.0),
            seed: 42,
            scheduling: WakeMode::Coarse,
        };
        let report = Simulation::ring(4, 4, &*CsmaSuite.simulator_for(&env, &[x]), cfg)
            .unwrap()
            .run();
        let e_ratio = report.bottleneck_energy(env.epoch).value() / perf.energy.value();
        assert!(
            (0.8..=1.25).contains(&e_ratio),
            "CSMA energy ratio {e_ratio:.3}"
        );
        assert!(report.delivery_ratio() > 0.95);
    }
}
