//! The protocol-suite registry: one API that owns *both* sides of a
//! MAC protocol — its analytic [`MacModel`] and its simulator
//! configuration — so the two can never diverge.
//!
//! Before this crate, the workspace kept two closed protocol
//! vocabularies (the analytic `edmac_mac::ProtocolConfig` record and a
//! simulator `ProtocolConfig` enum) glued together by a hand-written
//! match bridge in `edmac-study` and per-binary protocol tables.
//! Adding a protocol meant editing all of them. A [`ProtocolSuite`]
//! bundles, per protocol:
//!
//! * a stable **name** (also the registry lookup key and the label in
//!   every artifact),
//! * a factory for the **analytic model** ([`ProtocolSuite::model`]),
//!   whose `configure(&Deployment)` derives the structural
//!   [`ProtocolConfig`] record,
//! * a factory for the **simulator protocol**
//!   ([`ProtocolSuite::simulator`]) consuming that same record plus
//!   the tuned parameter vector — analytic and simulated structure
//!   agree *by construction*,
//! * a **reference operating point** for panel-style sweeps
//!   ([`ProtocolSuite::reference_params`]).
//!
//! The [`ProtocolRegistry`] holds suites in deterministic registration
//! order with total, normalization-insensitive name lookup; the
//! `study`, `scenarios` and figure binaries all resolve their panels
//! through it (`--protocols` selects by name). [`CsmaSuite`] — an
//! always-on CSMA/CA baseline that is *not* in the paper — lives
//! entirely in this crate on the public `edmac-mac`/`edmac-sim`
//! surfaces, as the proof that downstream code can register a new MAC
//! without touching the model, simulator, study or binaries.
//!
//! # Example
//!
//! ```
//! use edmac_mac::Deployment;
//! use edmac_proto::ProtocolRegistry;
//!
//! let registry = ProtocolRegistry::builtin();
//! let env = Deployment::reference();
//! let suite = registry.get("xmac").expect("lookup is spelling-tolerant");
//! let model = suite.model();
//! let config = model.configure(&env);
//! // The simulator protocol is built from the same structural record.
//! let sim = suite.simulator(&config, &[0.1]);
//! assert_eq!(sim.name(), model.name());
//! ```
//!
//! [`MacModel`]: edmac_mac::MacModel
//! [`ProtocolConfig`]: edmac_mac::ProtocolConfig

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs, missing_debug_implementations)]

mod csma;
mod registry;
mod suite;

pub use csma::{p_collision, CsmaMac, CsmaSim, CsmaSuite};
pub use registry::{paper_trio_models, ProtoError, ProtocolRegistry, PAPER_TRIO, STANDARD_PANEL};
pub use suite::{DmacSuite, LmacSuite, ProtocolSuite, ScpSuite, XmacSuite};
