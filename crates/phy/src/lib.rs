//! Physical-layer channel models for the ED-MAC simulator.
//!
//! The engine historically modelled the channel as a **binary
//! unit-disk** graph: every node within distance 1 hears every frame,
//! any overlap destroys the locked reception, and links are symmetric
//! by construction. That is the degenerate end of a spectrum this
//! crate makes explicit through the [`ChannelModel`] trait:
//!
//! * [`UnitDisk`] — the existing behavior, kept as the reference
//!   implementation and the default everywhere. A simulation built
//!   over `UnitDisk` is *bit-for-bit identical* to one built without a
//!   channel model at all (the engine keeps its binary fast path).
//! * [`SinrChannel`] — log-distance path loss with per-directed-link
//!   lognormal shadowing and a thermal noise floor. A reception is
//!   decodable iff its SINR clears a capture threshold against the
//!   *sum* of concurrent interferers, so overlap no longer implies
//!   loss and links become asymmetric (shadowing is drawn per directed
//!   pair).
//!
//! [`ChannelModel::realize`] turns node positions into a [`LinkField`]:
//! per-directed-link received powers above an interference floor, plus
//! the symmetric decode graph (both directions above sensitivity) that
//! routing runs over. Realization uses the same spatial-hash candidate
//! pruning as `edmac_net::Topology::graph`, so 100k-node fields stay
//! O(n) for bounded densities.
//!
//! Distances are in the unit-disk scale the rest of the workspace
//! uses (disk radius ≡ 1), and the power figures are *stylized*: the
//! defaults are chosen so that at σ = 0 the sensitivity contour sits
//! exactly at distance 1, which is what makes
//! [`SinrChannel::degenerate`] reproduce `UnitDisk` link-for-link.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs, missing_debug_implementations)]

use edmac_net::{Graph, NodeId, Point2};
use std::collections::HashMap;

/// Convert a power in dBm to linear milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Convert a linear power in milliwatts to dBm.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// The SINR decode parameters a realized channel hands the engine.
///
/// `None` from [`ChannelModel::sinr`] means the engine should keep its
/// binary overlap-collision bookkeeping; `Some` switches it to
/// power-accurate interference tracking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinrParams {
    /// Thermal noise floor, linear mW.
    pub noise_mw: f64,
    /// Receiver sensitivity, linear mW: arrivals below this power are
    /// noise (counted, never locked onto).
    pub sensitivity_mw: f64,
    /// Capture threshold as a *linear* SINR ratio. `None` disables
    /// capture: the receiver locks onto the first arrival exactly like
    /// the binary engine, and any overlap while locked destroys the
    /// frame. `Some(c)` engages full SINR gating: a frame locks (and
    /// stays decodable) only while its SINR against noise plus summed
    /// interference is at least `c`.
    pub capture: Option<f64>,
}

impl SinrParams {
    /// SINR of a signal against this channel's noise floor plus the
    /// given summed interference power (all linear mW).
    #[inline]
    pub fn sinr(&self, signal_mw: f64, interference_mw: f64) -> f64 {
        signal_mw / (self.noise_mw + interference_mw)
    }

    /// Whether a signal at `signal_mw` decodes against `interference_mw`
    /// of concurrent interference under the capture rule.
    #[inline]
    pub fn decodable(&self, signal_mw: f64, interference_mw: f64) -> bool {
        if signal_mw < self.sensitivity_mw {
            return false;
        }
        match self.capture {
            Some(c) => self.sinr(signal_mw, interference_mw) >= c,
            None => true,
        }
    }
}

/// Incremental tracker of total on-air power at one receiver.
///
/// The engine keeps one per node and updates it on every `AirStart` /
/// `AirEnd`, so a per-decode SINR check is O(1) instead of a rescan of
/// concurrent transmissions. The count doubles as a float-drift guard:
/// when the last frame leaves the air the accumulated power snaps back
/// to exactly `0.0`, so long runs cannot accumulate rounding residue
/// that would perturb deterministic replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterferenceTally {
    power_mw: f64,
    count: u32,
}

impl InterferenceTally {
    /// A tally with nothing on the air.
    pub fn new() -> InterferenceTally {
        InterferenceTally::default()
    }

    /// A frame with the given received power entered the air.
    #[inline]
    pub fn add(&mut self, power_mw: f64) {
        self.power_mw += power_mw;
        self.count += 1;
    }

    /// A frame with the given received power left the air.
    #[inline]
    pub fn remove(&mut self, power_mw: f64) {
        self.count = self.count.saturating_sub(1);
        if self.count == 0 {
            self.power_mw = 0.0;
        } else {
            self.power_mw -= power_mw;
        }
    }

    /// Number of frames currently on the air at this receiver.
    #[inline]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Total on-air power in mW (including any locked signal).
    #[inline]
    pub fn power_mw(&self) -> f64 {
        self.power_mw
    }

    /// SINR of `signal_mw` (which must be part of the tally) against
    /// the rest of the tally plus `noise_mw`.
    #[inline]
    pub fn sinr(&self, signal_mw: f64, noise_mw: f64) -> f64 {
        let interference = (self.power_mw - signal_mw).max(0.0);
        signal_mw / (noise_mw + interference)
    }
}

/// A realized channel: who hears whom, at what power, and which links
/// are good enough to route over.
///
/// `receivers[u]` lists every node that registers energy from `u`'s
/// transmissions (received power at or above the model's interference
/// floor), in ascending receiver order, with the linear received power
/// in mW. This is the engine's *air* adjacency — the superset the
/// sharded scheduler must stay conservative over. The *decode* graph
/// is the symmetric subgraph where **both** directions clear the
/// sensitivity threshold; routing trees are built over it.
#[derive(Debug, Clone, Default)]
pub struct LinkField {
    receivers: Vec<Vec<(NodeId, f64)>>,
    decode_edges: Vec<(NodeId, NodeId)>,
}

impl LinkField {
    /// Number of nodes in the field.
    pub fn len(&self) -> usize {
        self.receivers.len()
    }

    /// Whether the field is empty.
    pub fn is_empty(&self) -> bool {
        self.receivers.is_empty()
    }

    /// The nodes that hear `node`'s transmissions, ascending, with
    /// received power in mW.
    pub fn receivers(&self, node: NodeId) -> &[(NodeId, f64)] {
        &self.receivers[node.index()]
    }

    /// Total directed air links in the field.
    pub fn air_link_count(&self) -> usize {
        self.receivers.iter().map(Vec::len).sum()
    }

    /// The symmetric decode graph: edge `u – v` iff both directed
    /// links clear the model's sensitivity threshold.
    pub fn decode_graph(&self) -> Graph {
        let mut graph = Graph::with_nodes(self.receivers.len());
        for &(a, b) in &self.decode_edges {
            graph.add_edge(a, b);
        }
        graph
    }
}

/// A channel model: turns node positions into a realized [`LinkField`]
/// and tells the engine how to judge receptions.
pub trait ChannelModel: std::fmt::Debug {
    /// Human-readable model name for reports and artifacts.
    fn name(&self) -> &'static str;

    /// Realize per-directed-link received powers for these positions.
    /// `seed` drives the shadowing draw; the same `(positions, seed)`
    /// always yields the same field.
    fn realize(&self, positions: &[Point2], seed: u64) -> LinkField;

    /// The decode parameters the engine should run with, or `None` for
    /// binary overlap-collision bookkeeping.
    fn sinr(&self) -> Option<SinrParams>;
}

/// Spatial-hash pass shared by both models: buckets positions into
/// `range`-sized cells and visits each unordered pair `(i, j)` with
/// `i < j` at most `range` apart, `j` ascending per `i` — the same
/// discipline `Topology::graph` uses, so adjacency orderings match the
/// unit-disk builder exactly.
fn each_candidate_pair(positions: &[Point2], range: f64, mut visit: impl FnMut(usize, usize, f64)) {
    let range = range.max(f64::MIN_POSITIVE);
    let range_sq = range * range;
    let cell_of = |p: &Point2| ((p.x / range).floor() as i64, (p.y / range).floor() as i64);
    let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (i, p) in positions.iter().enumerate() {
        cells.entry(cell_of(p)).or_default().push(i);
    }
    let mut candidates = Vec::new();
    for (i, p) in positions.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        candidates.clear();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = cells.get(&(cx + dx, cy + dy)) {
                    candidates.extend(bucket.iter().copied().filter(|&j| j > i));
                }
            }
        }
        candidates.sort_unstable();
        for &j in &candidates {
            let d_sq = p.distance_squared(positions[j]);
            if d_sq <= range_sq {
                visit(i, j, d_sq);
            }
        }
    }
}

/// The degenerate reference: every node within distance 1 hears every
/// frame, any overlap destroys a locked reception, links are
/// symmetric. A simulation built over `UnitDisk` keeps the engine's
/// binary fast path and is byte-identical to one built with no channel
/// model at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitDisk;

impl ChannelModel for UnitDisk {
    fn name(&self) -> &'static str {
        "unit-disk"
    }

    fn realize(&self, positions: &[Point2], _seed: u64) -> LinkField {
        let mut receivers = vec![Vec::new(); positions.len()];
        let mut decode_edges = Vec::new();
        each_candidate_pair(positions, 1.0, |i, j, _d_sq| {
            let (a, b) = (NodeId::new(i), NodeId::new(j));
            receivers[i].push((b, 1.0));
            receivers[j].push((a, 1.0));
            decode_edges.push((a, b));
        });
        LinkField {
            receivers,
            decode_edges,
        }
    }

    fn sinr(&self) -> Option<SinrParams> {
        None
    }
}

/// Log-distance path loss with per-directed-link lognormal shadowing,
/// a noise floor, and SINR capture.
///
/// Received power for the directed link `u → v` at distance `d` is
///
/// ```text
/// rx_dbm = tx_power_dbm − ref_loss_db − 10·α·log10(d) − X(u→v)
/// ```
///
/// where `α` is [`path_loss_exp`](SinrChannel::path_loss_exp) and
/// `X(u→v) ~ N(0, σ²)` is a shadowing draw hashed deterministically
/// from `(seed, u, v)` — *directed*, so `u → v` and `v → u` shadow
/// independently and links are asymmetric for σ > 0.
///
/// Three thresholds carve up the field:
///
/// * links at or above [`sensitivity_dbm`](SinrChannel::sensitivity_dbm)
///   in **both** directions form the decode graph routing runs over;
/// * links at or above
///   [`interference_floor_dbm`](SinrChannel::interference_floor_dbm)
///   in a direction contribute interference power at that receiver
///   (this is the engine's air adjacency, a superset of the decode
///   graph — the sharded scheduler stays conservative over it);
/// * anything weaker is ignored entirely.
///
/// The defaults place the σ = 0 sensitivity contour exactly at the
/// unit-disk radius, which is what makes
/// [`degenerate`](SinrChannel::degenerate) reproduce [`UnitDisk`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinrChannel {
    /// Transmit power in dBm (default 0).
    pub tx_power_dbm: f64,
    /// Path loss at the reference distance d = 1... almost: the loss
    /// model is `ref_loss_db + 10·α·log10(d)`, so at d = 1 exactly
    /// `ref_loss_db` is lost (default 40 dB).
    pub ref_loss_db: f64,
    /// Path-loss exponent α (default 3.0, an indoor-ish deployment).
    pub path_loss_exp: f64,
    /// Lognormal shadowing standard deviation σ in dB (default 4.0;
    /// 0 disables shadowing and makes links symmetric).
    pub shadowing_sigma_db: f64,
    /// Thermal noise floor in dBm (default −60).
    pub noise_floor_dbm: f64,
    /// Receiver sensitivity in dBm (default −40: with the other
    /// defaults the σ = 0 sensitivity contour sits at distance 1).
    pub sensitivity_dbm: f64,
    /// Capture threshold in dB (default `Some(6.0)`). `None` turns
    /// capture off: first-arrival locking and overlap-destroys, i.e.
    /// the binary engine's decision rule over SINR-realized links.
    pub capture_db: Option<f64>,
    /// Links below this received power (dBm) are dropped from the
    /// field entirely (default −55: interference range ≈ 3.16 disk
    /// radii at σ = 0).
    pub interference_floor_dbm: f64,
}

impl Default for SinrChannel {
    fn default() -> SinrChannel {
        SinrChannel {
            tx_power_dbm: 0.0,
            ref_loss_db: 40.0,
            path_loss_exp: 3.0,
            shadowing_sigma_db: 4.0,
            noise_floor_dbm: -60.0,
            sensitivity_dbm: -40.0,
            capture_db: Some(6.0),
            interference_floor_dbm: -55.0,
        }
    }
}

impl SinrChannel {
    /// The configuration that reproduces [`UnitDisk`] exactly while
    /// exercising the engine's SINR code path: σ = 0 (symmetric
    /// links), capture off (binary lock/destroy decisions), and the
    /// interference floor raised to the sensitivity threshold (air
    /// adjacency ≡ decode adjacency ≡ the unit-disk graph).
    pub fn degenerate() -> SinrChannel {
        SinrChannel {
            shadowing_sigma_db: 0.0,
            capture_db: None,
            interference_floor_dbm: -40.0,
            ..SinrChannel::default()
        }
    }

    /// The [`SinrParams`] this model hands the engine.
    pub fn params(&self) -> SinrParams {
        SinrParams {
            noise_mw: dbm_to_mw(self.noise_floor_dbm),
            sensitivity_mw: dbm_to_mw(self.sensitivity_dbm),
            capture: self.capture_db.map(dbm_to_mw),
        }
    }

    /// Maximum distance at which a link can clear the interference
    /// floor, with a +4σ shadowing allowance. Used as the spatial-hash
    /// candidate range; a 4σ favorable draw beyond it is possible but
    /// has probability < 4 · 10⁻⁵ per link and is deliberately pruned.
    pub fn candidate_range(&self) -> f64 {
        let budget_db = self.tx_power_dbm - self.ref_loss_db - self.interference_floor_dbm
            + 4.0 * self.shadowing_sigma_db;
        // budget = 10 α log10(d)  ⇒  d = 10^(budget / (10 α))
        10f64.powf(budget_db / (10.0 * self.path_loss_exp)).max(1.0)
    }

    /// Received power in dBm over the directed link `tx → rx` at
    /// squared distance `d_sq`, including the shadowing draw.
    ///
    /// The deterministic loss is computed as `5·α·log10(d²)` straight
    /// from the squared distance — no square root — so the σ = 0
    /// sensitivity test at d² = 1 is exact.
    pub fn rx_dbm(&self, seed: u64, tx: usize, rx: usize, d_sq: f64) -> f64 {
        let d_sq = d_sq.max(1e-6); // coincident nodes: clamp, don't -inf
        self.tx_power_dbm
            - self.ref_loss_db
            - 5.0 * self.path_loss_exp * d_sq.log10()
            - shadow_db(seed, tx, rx, self.shadowing_sigma_db)
    }
}

impl ChannelModel for SinrChannel {
    fn name(&self) -> &'static str {
        "sinr"
    }

    fn realize(&self, positions: &[Point2], seed: u64) -> LinkField {
        let sens = self.sensitivity_dbm;
        let floor = self.interference_floor_dbm.min(sens);
        let mut receivers = vec![Vec::new(); positions.len()];
        let mut decode_edges = Vec::new();
        each_candidate_pair(positions, self.candidate_range(), |i, j, d_sq| {
            let fwd = self.rx_dbm(seed, i, j, d_sq);
            let rev = self.rx_dbm(seed, j, i, d_sq);
            if fwd >= floor {
                receivers[i].push((NodeId::new(j), dbm_to_mw(fwd)));
            }
            if rev >= floor {
                receivers[j].push((NodeId::new(i), dbm_to_mw(rev)));
            }
            if fwd >= sens && rev >= sens {
                decode_edges.push((NodeId::new(i), NodeId::new(j)));
            }
        });
        LinkField {
            receivers,
            decode_edges,
        }
    }

    fn sinr(&self) -> Option<SinrParams> {
        Some(self.params())
    }
}

/// SplitMix64 finalizer — the workspace's standard stateless mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic N(0, σ²) shadowing draw for the *directed* pair
/// `tx → rx`: two hashed uniforms through Box–Muller. σ = 0 returns
/// exactly 0.0 (no hash, no rounding).
fn shadow_db(seed: u64, tx: usize, rx: usize, sigma_db: f64) -> f64 {
    if sigma_db == 0.0 {
        return 0.0;
    }
    let pair = ((tx as u64) << 32) ^ (rx as u64) ^ 0x5DEE_CE66_D000_0001;
    let key = splitmix64(seed ^ splitmix64(pair));
    let a = splitmix64(key ^ 0xA076_1D64_78BD_642F);
    let b = splitmix64(key ^ 0xE703_7ED1_A0B4_28DB);
    // u1 ∈ (0, 1] so ln never sees 0; u2 ∈ [0, 1).
    let u1 = ((a >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let u2 = (b >> 11) as f64 / (1u64 << 53) as f64;
    sigma_db * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn scatter(n: usize, side: f64, seed: u64) -> Vec<Point2> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect()
    }

    #[test]
    fn unit_disk_receivers_match_distance_test() {
        let positions = scatter(60, 6.0, 7);
        let field = UnitDisk.realize(&positions, 0);
        for i in 0..positions.len() {
            let expected: Vec<NodeId> = (0..positions.len())
                .filter(|&j| j != i && positions[i].distance_squared(positions[j]) <= 1.0)
                .map(NodeId::new)
                .collect();
            let got: Vec<NodeId> = field
                .receivers(NodeId::new(i))
                .iter()
                .map(|&(v, _)| v)
                .collect();
            assert_eq!(got, expected, "node {i}");
        }
    }

    #[test]
    fn degenerate_field_matches_unit_disk_link_for_link() {
        for seed in [1u64, 42, 9000] {
            let positions = scatter(80, 7.0, seed);
            let disk = UnitDisk.realize(&positions, seed);
            let sinr = SinrChannel::degenerate().realize(&positions, seed);
            for i in 0..positions.len() {
                let d: Vec<NodeId> = disk
                    .receivers(NodeId::new(i))
                    .iter()
                    .map(|&(v, _)| v)
                    .collect();
                let s: Vec<NodeId> = sinr
                    .receivers(NodeId::new(i))
                    .iter()
                    .map(|&(v, _)| v)
                    .collect();
                assert_eq!(d, s, "air adjacency of node {i}, seed {seed}");
            }
            let dg = disk.decode_graph();
            let sg = sinr.decode_graph();
            for i in 0..positions.len() {
                assert_eq!(
                    dg.neighbors(NodeId::new(i)),
                    sg.neighbors(NodeId::new(i)),
                    "decode adjacency of node {i}, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn degenerate_mode_has_no_capture_and_disk_thresholds() {
        let params = SinrChannel::degenerate().params();
        assert_eq!(params.capture, None);
        assert!(params.decodable(params.sensitivity_mw, 10.0 * params.sensitivity_mw));
        assert!(!params.decodable(params.sensitivity_mw * 0.999, 0.0));
    }

    #[test]
    fn shadowed_links_are_asymmetric_and_deterministic() {
        let chan = SinrChannel::default();
        let a = chan.rx_dbm(99, 3, 4, 2.0);
        let b = chan.rx_dbm(99, 4, 3, 2.0);
        assert_ne!(a, b, "directed shadowing should decorrelate u→v and v→u");
        assert_eq!(a, chan.rx_dbm(99, 3, 4, 2.0), "draws must be reproducible");
        assert_ne!(a, chan.rx_dbm(100, 3, 4, 2.0), "seed must matter");
    }

    #[test]
    fn shadowing_moments_are_sane() {
        let sigma = 4.0;
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|i| shadow_db(5, i, i + 1, sigma)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.15, "std {}", var.sqrt());
    }

    #[test]
    fn capture_threshold_separates_decode_outcomes() {
        let params = SinrChannel::default().params();
        let signal = dbm_to_mw(-30.0);
        // 6 dB capture: interference 6 dB below the signal decodes,
        // equal-power interference does not.
        assert!(params.decodable(signal, dbm_to_mw(-37.0)));
        assert!(!params.decodable(signal, signal));
        // Below sensitivity never decodes, whatever the interference.
        assert!(!params.decodable(dbm_to_mw(-41.0), 0.0));
    }

    #[test]
    fn interference_tally_is_incremental_and_drift_free() {
        let mut tally = InterferenceTally::new();
        let powers = [1e-4, 3e-4, 7e-5];
        for p in powers {
            tally.add(p);
        }
        assert_eq!(tally.count(), 3);
        let sum: f64 = powers.iter().sum();
        assert!((tally.power_mw() - sum).abs() < 1e-18);
        let sinr = tally.sinr(3e-4, 1e-6);
        assert!((sinr - 3e-4 / (1e-6 + 1e-4 + 7e-5)).abs() < 1e-12);
        for p in powers {
            tally.remove(p);
        }
        assert_eq!(tally.count(), 0);
        assert_eq!(
            tally.power_mw(),
            0.0,
            "empty tally must snap to exactly zero"
        );
    }

    #[test]
    fn candidate_range_covers_interference_floor() {
        let chan = SinrChannel {
            shadowing_sigma_db: 0.0,
            ..SinrChannel::default()
        };
        // floor −55 dBm, 15 dB of budget past the unit contour at α=3:
        // d = 10^(15/30) ≈ 3.162.
        assert!((chan.candidate_range() - 10f64.powf(0.5)).abs() < 1e-12);
        let degenerate = SinrChannel::degenerate();
        assert_eq!(degenerate.candidate_range(), 1.0);
    }

    #[test]
    fn sinr_field_has_asymmetric_air_links_under_shadowing() {
        let positions = scatter(120, 8.0, 11);
        let field = SinrChannel::default().realize(&positions, 11);
        let mut asymmetric = 0usize;
        for i in 0..positions.len() {
            for &(j, _) in field.receivers(NodeId::new(i)) {
                let reverse = field.receivers(j).iter().any(|&(v, _)| v == NodeId::new(i));
                if !reverse {
                    asymmetric += 1;
                }
            }
        }
        assert!(
            asymmetric > 0,
            "4 dB shadowing should break some links one-way"
        );
        assert!(field.air_link_count() > 0);
    }
}
