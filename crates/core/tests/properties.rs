//! Property-based tests on the framework: invariants of (P1), (P2) and
//! the bargaining solution across random requirements.

use edmac_core::{AppRequirements, TradeoffAnalysis};
use edmac_mac::{all_models, Deployment};
use edmac_units::{Joules, Seconds};
use proptest::prelude::*;

fn requirements() -> impl Strategy<Value = AppRequirements> {
    // Budgets and bounds spanning the feasible region of all three
    // protocols at the reference deployment.
    (0.02..0.2f64, 1.0..8.0f64).prop_map(|(budget, lmax)| {
        AppRequirements::new(Joules::new(budget), Seconds::new(lmax)).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn agreements_respect_requirements_and_dominate_disagreement(reqs in requirements()) {
        let env = Deployment::reference();
        for model in all_models() {
            let analysis = TradeoffAnalysis::new(model.as_ref(), &env, reqs);
            let Ok(report) = analysis.bargain() else {
                // Some random requirement sets are infeasible for some
                // protocols (e.g. LMAC under a 1 s bound with a starved
                // budget); that is a correct, reported outcome.
                continue;
            };
            let eps = 1e-9;
            prop_assert!(report.e_star() <= reqs.energy_budget().value() + eps,
                "{}: E* over budget", model.name());
            prop_assert!(report.l_star() <= reqs.latency_bound().value() + eps,
                "{}: L* over bound", model.name());
            prop_assert!(report.e_star() <= report.e_worst() + eps);
            prop_assert!(report.l_star() <= report.l_worst() + eps);
            prop_assert!(report.e_star() + eps >= report.e_best(),
                "{}: E* cannot beat the energy player's optimum", model.name());
            prop_assert!(report.l_star() + eps >= report.l_best(),
                "{}: L* cannot beat the latency player's optimum", model.name());
        }
    }

    #[test]
    fn single_objective_optima_bracket_the_game(reqs in requirements()) {
        let env = Deployment::reference();
        for model in all_models() {
            let analysis = TradeoffAnalysis::new(model.as_ref(), &env, reqs);
            let (Ok(p1), Ok(p2)) = (analysis.energy_optimal(), analysis.latency_optimal())
            else {
                continue;
            };
            // Each program satisfies its own constraint...
            prop_assert!(p1.latency.value() <= reqs.latency_bound().value() + 1e-9);
            prop_assert!(p2.energy.value() <= reqs.energy_budget().value() + 1e-9);
            // ...and when the requirements are jointly feasible, P1 is
            // at least as energy-frugal as P2 (with joint infeasibility
            // the two optima live in disjoint half-spaces and no
            // bracketing holds — bargain() reports that case).
            if p1.energy.value() <= reqs.energy_budget().value() {
                prop_assert!(p1.energy <= p2.energy * (1.0 + 1e-9),
                    "{}: Ebest must not exceed Eworst", model.name());
                prop_assert!(p2.latency <= p1.latency * (1.0 + 1e-9),
                    "{}: Lbest must not exceed Lworst", model.name());
            }
        }
    }

    #[test]
    fn relaxing_latency_never_raises_best_energy(
        lmax in 1.0..4.0f64,
        extra in 0.5..3.0f64,
    ) {
        let env = Deployment::reference();
        let budget = Joules::new(0.06);
        for model in all_models() {
            let tight = AppRequirements::new(budget, Seconds::new(lmax)).unwrap();
            let loose = AppRequirements::new(budget, Seconds::new(lmax + extra)).unwrap();
            let a = TradeoffAnalysis::new(model.as_ref(), &env, tight).energy_optimal();
            let b = TradeoffAnalysis::new(model.as_ref(), &env, loose).energy_optimal();
            let (Ok(a), Ok(b)) = (a, b) else { continue };
            prop_assert!(
                b.energy.value() <= a.energy.value() * (1.0 + 1e-6),
                "{}: wider bound gave worse energy ({} -> {})",
                model.name(), a.energy, b.energy
            );
        }
    }

    #[test]
    fn raising_budget_never_raises_best_latency(
        budget in 0.02..0.1f64,
        extra in 0.01..0.1f64,
    ) {
        let env = Deployment::reference();
        let lmax = Seconds::new(6.0);
        for model in all_models() {
            let poor = AppRequirements::new(Joules::new(budget), lmax).unwrap();
            let rich = AppRequirements::new(Joules::new(budget + extra), lmax).unwrap();
            let a = TradeoffAnalysis::new(model.as_ref(), &env, poor).latency_optimal();
            let b = TradeoffAnalysis::new(model.as_ref(), &env, rich).latency_optimal();
            let (Ok(a), Ok(b)) = (a, b) else { continue };
            prop_assert!(
                b.latency.value() <= a.latency.value() * (1.0 + 1e-6),
                "{}: bigger budget gave worse latency",
                model.name()
            );
        }
    }
}
