//! End-to-end scenario runs: the previously dead `Topology::uniform_disk`
//! and non-uniform `edmac-net` traffic paths, driven through the
//! `Scenario` layer into the packet-level simulator, one run per
//! protocol.

use edmac_core::Scenario;
use edmac_sim::{DmacSim, LmacSim, ScpSim, SimConfig, SimProtocol, SimReport, WakeMode, XmacSim};
use edmac_units::Seconds;

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        duration: Seconds::new(300.0),
        sample_period: Seconds::new(40.0), // overridden by the scenario
        warmup: Seconds::new(40.0),
        seed,
        scheduling: WakeMode::Coarse,
    }
}

fn protocols() -> [Box<dyn SimProtocol>; 4] {
    [
        Box::new(XmacSim::new(Seconds::from_millis(100.0))),
        Box::new(DmacSim::new(Seconds::new(0.5))),
        // A disk neighborhood needs more distance-2 slots than the
        // ring default of 24.
        Box::new(LmacSim {
            slot: Seconds::from_millis(10.0),
            frame_slots: 64,
        }),
        Box::new(ScpSim::new(Seconds::from_millis(250.0))),
    ]
}

#[test]
fn every_protocol_delivers_on_a_uniform_disk() {
    let scenario = Scenario::uniform_disk(60, 2.5, Seconds::new(60.0));
    for protocol in &protocols() {
        let report = scenario
            .simulation(protocol.as_ref(), sim_config(11))
            .expect("disk scenario builds")
            .run();
        // SCP's single common schedule makes every boundary one
        // contention domain per hearing range; hidden terminals on an
        // irregular disk cost it real deliveries — which is exactly
        // the off-ring behavior this scenario exists to expose.
        let floor = if protocol.name() == "SCP-MAC" {
            0.7
        } else {
            0.85
        };
        assert!(
            report.delivery_ratio() > floor,
            "{} on {}: delivery {:.3}",
            report.protocol(),
            scenario.name,
            report.delivery_ratio()
        );
    }
}

fn per_origin_counts(report: &SimReport) -> Vec<usize> {
    let mut counts = vec![0usize; report.per_node().len()];
    for r in report.records() {
        counts[r.origin.index()] += 1;
    }
    counts
}

#[test]
fn hotspot_nodes_generate_proportionally_more_traffic() {
    let period = Seconds::new(40.0);
    let flat = Scenario::uniform_disk(60, 2.5, period);
    let hot = Scenario::hotspot_disk(60, 2.5, period);
    let protocol = XmacSim::new(Seconds::from_millis(100.0));
    let flat_counts = per_origin_counts(&flat.simulation(&protocol, sim_config(11)).unwrap().run());
    let hot_counts = per_origin_counts(&hot.simulation(&protocol, sim_config(11)).unwrap().run());
    let flat_total: usize = flat_counts.iter().sum();
    let hot_total: usize = hot_counts.iter().sum();
    // A quarter of the sources at 3x the rate => ~1.5x total traffic.
    assert!(
        hot_total as f64 > flat_total as f64 * 1.25,
        "hotspot total {hot_total} vs flat {flat_total}"
    );
    // And the extra packets concentrate on a minority of nodes.
    let mut boosted: Vec<f64> = flat_counts
        .iter()
        .zip(&hot_counts)
        .filter(|(&f, _)| f > 0)
        .map(|(&f, &h)| h as f64 / f as f64)
        .collect();
    boosted.sort_by(f64::total_cmp);
    let median = boosted[boosted.len() / 2];
    let max = boosted.last().copied().unwrap_or(0.0);
    assert!(
        max > median * 1.5,
        "some node must be clearly hotter (median ratio {median:.2}, max {max:.2})"
    );
}

#[test]
fn event_bursts_cluster_packet_creation_in_windows() {
    let period = Seconds::new(40.0);
    let scenario = Scenario::event_burst_disk(60, 2.0, period);
    let report = scenario
        .simulation(
            &XmacSim::new(Seconds::from_millis(100.0)),
            SimConfig {
                duration: Seconds::new(900.0),
                warmup: Seconds::ZERO,
                ..sim_config(7)
            },
        )
        .unwrap()
        .run();
    // Preset: 4x rate for 30 s out of every 300 s, bursts at t = 300
    // and t = 600. Compare creation rates inside vs outside windows.
    let (mut inside, mut outside) = (0usize, 0usize);
    for r in report.records() {
        let t = r.created.as_seconds().value();
        let phase = t % 300.0;
        if t >= 300.0 && phase < 30.0 {
            inside += 1;
        } else {
            outside += 1;
        }
    }
    // Windows cover 60 s of 900 s at 4x the rate, but each window is
    // shorter than the base period: every node enters it with a next
    // sample already drawn at the slow rate, so the realized
    // concentration ramps in at roughly 2x rather than the steady
    // state 4x. Require a clear concentration with margin for the
    // sampling noise of a single seed.
    let inside_rate = inside as f64 / 60.0;
    let outside_rate = outside as f64 / 840.0;
    assert!(
        inside_rate > outside_rate * 1.5,
        "burst windows should concentrate sampling ({inside_rate:.3}/s vs {outside_rate:.3}/s)"
    );
}

#[test]
fn scenario_runs_are_seed_deterministic() {
    let scenario = Scenario::hotspot_disk(60, 2.5, Seconds::new(40.0));
    let protocol = ScpSim::new(Seconds::from_millis(250.0));
    let a = scenario.simulation(&protocol, sim_config(3)).unwrap().run();
    let b = scenario.simulation(&protocol, sim_config(3)).unwrap().run();
    assert_eq!(a.records().len(), b.records().len());
    assert_eq!(a.delivered_count(), b.delivered_count());
    for (sa, sb) in a.per_node().iter().zip(b.per_node()) {
        assert_eq!(
            sa.breakdown.total().value().to_bits(),
            sb.breakdown.total().value().to_bits(),
            "node {}",
            sa.node
        );
    }
}
