//! The study's scenario grid: a deterministic enumeration of the
//! scenario space (topology preset × node count × hotspot intensity ×
//! burst duty × ring depth) the bargaining-vs-aggregate study sweeps.
//!
//! A [`StudyGrid`] names the axis values; [`StudyGrid::cells`] expands
//! them into concrete [`GridCell`]s, each carrying a realized-ready
//! [`Scenario`], its axis coordinates, and a deterministic per-cell
//! seed (so a grid run is bit-reproducible and each cell's topology
//! draw is independent of every other's).

use crate::scenario::{Scenario, TopologySpec, TrafficSpec};
use edmac_units::Seconds;

/// The topology/traffic preset families the grid spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresetKind {
    /// The paper's concentric-ring deployment, uniform traffic.
    Ring,
    /// Uniform-disk field, uniform traffic.
    UniformDisk,
    /// Uniform-disk field with a spatial rate hotspot.
    HotspotDisk,
    /// Uniform-disk field with synchronized event bursts.
    BurstDisk,
}

impl PresetKind {
    /// Every preset family, in grid order.
    pub const ALL: [PresetKind; 4] = [
        PresetKind::Ring,
        PresetKind::UniformDisk,
        PresetKind::HotspotDisk,
        PresetKind::BurstDisk,
    ];

    /// Stable lowercase label (CSV value and CLI name).
    pub fn label(&self) -> &'static str {
        match self {
            PresetKind::Ring => "ring",
            PresetKind::UniformDisk => "disk",
            PresetKind::HotspotDisk => "hotspot",
            PresetKind::BurstDisk => "burst",
        }
    }

    /// Parses a CLI preset name (the inverse of [`PresetKind::label`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use edmac_core::PresetKind;
    ///
    /// assert_eq!(PresetKind::parse("hotspot"), Some(PresetKind::HotspotDisk));
    /// assert_eq!(PresetKind::parse("Ring"), Some(PresetKind::Ring));
    /// assert_eq!(PresetKind::parse("mesh"), None);
    /// ```
    pub fn parse(name: &str) -> Option<PresetKind> {
        let name = name.to_lowercase();
        PresetKind::ALL.into_iter().find(|k| k.label() == name)
    }
}

impl std::fmt::Display for PresetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One point of the scenario grid: a concrete [`Scenario`] plus its
/// axis coordinates and per-cell seed.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Position in the grid's deterministic enumeration order.
    pub index: usize,
    /// The workload to realize.
    pub scenario: Scenario,
    /// Which preset family the cell belongs to.
    pub preset: PresetKind,
    /// Nominal node count (sink included; rings: derived from the ring
    /// model).
    pub nodes: usize,
    /// Ring depth axis value (0 for non-ring cells, whose realized
    /// depth is empirical).
    pub depth: usize,
    /// Hotspot rate multiplier (1 where the axis does not apply).
    pub hotspot_factor: f64,
    /// Burst duty cycle, `duration / every` (0 where the axis does not
    /// apply).
    pub burst_duty: f64,
    /// Deterministic seed for this cell's topology/simulation draws.
    pub seed: u64,
}

/// SplitMix64: the per-cell seed derivation (one multiply-xor chain, so
/// neighboring indices get statistically unrelated seeds).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Field radius holding the disk presets at the density of the
/// known-good 65-node / 2.5-range reference, clamped so small fields
/// stay connected and large ones stay in the simulator's comfort zone.
/// Shared by the grid and the `scenarios`/`study` binaries' preset
/// helper, so "a 40-node disk" means the same field everywhere.
pub fn disk_radius(nodes: usize) -> f64 {
    ((nodes as f64 / 65.0).sqrt() * 2.5).clamp(1.2, 3.5)
}

/// The axis values of one study run. Construct via [`StudyGrid::full`]
/// (the ≥200-cell sweep) or [`StudyGrid::smoke`] (the pinned CI grid),
/// then adjust fields freely.
///
/// # Examples
///
/// ```
/// use edmac_core::StudyGrid;
///
/// let grid = StudyGrid::smoke();
/// let cells = grid.cells();
/// assert_eq!(cells.len(), grid.scenario_count());
/// // Enumeration is deterministic: same grid, same cells, same seeds.
/// assert_eq!(grid.cells(), cells);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StudyGrid {
    /// Ring-preset depths `D`.
    pub ring_depths: Vec<usize>,
    /// Ring-preset densities `C`.
    pub ring_densities: Vec<usize>,
    /// Node counts of the uniform-disk preset.
    pub disk_nodes: Vec<usize>,
    /// Node counts of the hotspot preset.
    pub hotspot_nodes: Vec<usize>,
    /// Hotspot intensity axis: rate multipliers inside the hotspot.
    pub hotspot_factors: Vec<f64>,
    /// Node counts of the event-burst preset.
    pub burst_nodes: Vec<usize>,
    /// Burst duty axis: `duration / every` fractions in `(0, 1)`.
    pub burst_duties: Vec<f64>,
    /// Baseline sampling period shared by every cell.
    pub sample_period: Seconds,
    /// Hotspot spatial fraction (fixed across the intensity axis so the
    /// axis varies one thing).
    pub hotspot_fraction: f64,
    /// Burst recurrence interval (duty varies the window length).
    pub burst_every: Seconds,
    /// Burst rate multiplier inside a window.
    pub burst_factor: f64,
    /// Base of the per-cell seed derivation.
    pub seed_base: u64,
}

impl StudyGrid {
    /// The full sweep: 72 scenarios (24 rings + 8 disks + 20 hotspot +
    /// 20 burst cells), ≥200 protocol-cells once crossed with the
    /// paper's three protocols.
    pub fn full() -> StudyGrid {
        StudyGrid {
            ring_depths: vec![2, 3, 4, 6, 8, 10],
            ring_densities: vec![3, 4, 5, 6],
            disk_nodes: vec![20, 30, 40, 50, 65, 80, 100, 120],
            hotspot_nodes: vec![30, 50, 80, 100],
            hotspot_factors: vec![1.5, 2.0, 3.0, 4.0, 6.0],
            burst_nodes: vec![30, 50, 80, 100],
            burst_duties: vec![0.05, 0.1, 0.2, 0.35, 0.5],
            ..StudyGrid::smoke()
        }
    }

    /// The pinned CI smoke grid: one scenario per preset family
    /// (4 scenarios, 12 protocol-cells), small enough that the full
    /// harness — solves plus packet-level validation — finishes in
    /// seconds, stable enough to diff against golden artifacts.
    pub fn smoke() -> StudyGrid {
        StudyGrid {
            ring_depths: vec![4],
            ring_densities: vec![4],
            disk_nodes: vec![40],
            hotspot_nodes: vec![40],
            hotspot_factors: vec![3.0],
            burst_nodes: vec![40],
            burst_duties: vec![0.1],
            sample_period: Seconds::new(60.0),
            hotspot_fraction: 0.25,
            burst_every: Seconds::new(300.0),
            burst_factor: 4.0,
            seed_base: 0xED_AC,
        }
    }

    /// Number of scenario cells the grid expands to.
    pub fn scenario_count(&self) -> usize {
        self.ring_depths.len() * self.ring_densities.len()
            + self.disk_nodes.len()
            + self.hotspot_nodes.len() * self.hotspot_factors.len()
            + self.burst_nodes.len() * self.burst_duties.len()
    }

    /// Expands the axes into concrete cells, in deterministic order:
    /// rings (depth-major), disks, hotspot (nodes-major), burst
    /// (nodes-major). Cell seeds depend only on `seed_base` and the
    /// cell index.
    pub fn cells(&self) -> Vec<GridCell> {
        let mut cells = Vec::with_capacity(self.scenario_count());
        let push = |scenario: Scenario,
                    preset: PresetKind,
                    nodes: usize,
                    depth: usize,
                    hotspot_factor: f64,
                    burst_duty: f64,
                    cells: &mut Vec<GridCell>| {
            let index = cells.len();
            // Random-topology draws can come out disconnected; probe a
            // deterministic seed chain until one connects so the grid
            // never has holes, yet stays bit-reproducible. (Ring and
            // line realizations ignore the seed entirely.)
            let mut seed = splitmix64(self.seed_base ^ ((index as u64) << 20));
            for _ in 0..64 {
                if scenario.topology.realize(seed).is_ok() {
                    break;
                }
                seed = splitmix64(seed);
            }
            cells.push(GridCell {
                index,
                scenario,
                preset,
                nodes,
                depth,
                hotspot_factor,
                burst_duty,
                seed,
            });
        };
        for &depth in &self.ring_depths {
            for &density in &self.ring_densities {
                // Ring node count: sink + C·d per ring d = 1 + C·D(D+1)/2.
                let nodes = 1 + density * depth * (depth + 1) / 2;
                push(
                    Scenario::ring(depth, density, self.sample_period),
                    PresetKind::Ring,
                    nodes,
                    depth,
                    1.0,
                    0.0,
                    &mut cells,
                );
            }
        }
        for &nodes in &self.disk_nodes {
            push(
                Scenario {
                    name: format!("disk_n{nodes}"),
                    topology: TopologySpec::UniformDisk {
                        nodes,
                        field_radius: disk_radius(nodes),
                    },
                    traffic: TrafficSpec::Uniform {
                        sample_period: self.sample_period,
                    },
                },
                PresetKind::UniformDisk,
                nodes,
                0,
                1.0,
                0.0,
                &mut cells,
            );
        }
        for &nodes in &self.hotspot_nodes {
            for &factor in &self.hotspot_factors {
                push(
                    Scenario {
                        name: format!("hotspot_n{nodes}_f{factor}"),
                        topology: TopologySpec::UniformDisk {
                            nodes,
                            field_radius: disk_radius(nodes),
                        },
                        traffic: TrafficSpec::Hotspot {
                            sample_period: self.sample_period,
                            factor,
                            fraction: self.hotspot_fraction,
                        },
                    },
                    PresetKind::HotspotDisk,
                    nodes,
                    0,
                    factor,
                    0.0,
                    &mut cells,
                );
            }
        }
        for &nodes in &self.burst_nodes {
            for &duty in &self.burst_duties {
                push(
                    Scenario {
                        name: format!("burst_n{nodes}_d{duty}"),
                        topology: TopologySpec::UniformDisk {
                            nodes,
                            field_radius: disk_radius(nodes),
                        },
                        traffic: TrafficSpec::EventBurst {
                            sample_period: self.sample_period,
                            factor: self.burst_factor,
                            every: self.burst_every,
                            duration: Seconds::new(self.burst_every.value() * duty),
                        },
                    },
                    PresetKind::BurstDisk,
                    nodes,
                    0,
                    1.0,
                    duty,
                    &mut cells,
                );
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_is_large_enough_for_the_study() {
        let grid = StudyGrid::full();
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.scenario_count());
        assert_eq!(cells.len(), 72);
        // Crossed with the paper's three protocols: ≥ 200 cells.
        assert!(cells.len() * 3 >= 200);
    }

    #[test]
    fn smoke_grid_is_pinned_small() {
        let cells = StudyGrid::smoke().cells();
        assert_eq!(cells.len(), 4);
        let presets: Vec<PresetKind> = cells.iter().map(|c| c.preset).collect();
        assert_eq!(presets, PresetKind::ALL.to_vec());
    }

    #[test]
    fn cell_indices_and_seeds_are_deterministic_and_distinct() {
        let grid = StudyGrid::full();
        let a = grid.cells();
        let b = grid.cells();
        assert_eq!(a, b);
        let mut seeds: Vec<u64> = a.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len(), "per-cell seeds must be unique");
        for (i, c) in a.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn seed_base_shifts_every_random_cell() {
        let mut other = StudyGrid::full();
        other.seed_base ^= 0xDEAD_BEEF;
        let a = StudyGrid::full().cells();
        let b = other.cells();
        assert!(a.iter().zip(&b).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn every_cell_realizes_a_deployment() {
        // The axes must be chosen so each cell's topology draw connects
        // at its own seed — otherwise the study would deterministically
        // hole the grid.
        for cell in StudyGrid::full().cells() {
            let env = cell
                .scenario
                .deployment(cell.seed)
                .unwrap_or_else(|e| panic!("{}: {e}", cell.scenario.name));
            assert!(env.traffic.depth() >= 1, "{}", cell.scenario.name);
        }
    }

    #[test]
    fn axes_fill_the_declared_coordinates() {
        let cells = StudyGrid::full().cells();
        assert!(cells
            .iter()
            .filter(|c| c.preset == PresetKind::HotspotDisk)
            .all(|c| c.hotspot_factor > 1.0 && c.burst_duty == 0.0));
        assert!(cells
            .iter()
            .filter(|c| c.preset == PresetKind::BurstDisk)
            .all(|c| c.burst_duty > 0.0 && c.hotspot_factor == 1.0));
        assert!(cells
            .iter()
            .filter(|c| c.preset == PresetKind::Ring)
            .all(|c| c.depth > 0));
    }

    #[test]
    fn preset_labels_round_trip() {
        for k in PresetKind::ALL {
            assert_eq!(PresetKind::parse(k.label()), Some(k));
            assert_eq!(k.to_string(), k.label());
        }
        assert_eq!(PresetKind::parse("nope"), None);
    }
}
