//! The trade-off analysis: (P1), (P2) and the Nash bargaining (P3/P4).

use crate::error::CoreError;
use crate::report::TradeoffReport;
use crate::requirements::AppRequirements;
use edmac_game::{nash_continuous, proportional_ratios, CostPoint, GameError};
use edmac_mac::{Deployment, MacModel};
use edmac_optim::{grid_minimize, NelderMead, Penalty};
use edmac_units::{Joules, Seconds};

/// Grid resolution of the global sweep phase (per dimension).
const GRID: usize = 384;

/// One operating point of a protocol: parameters and the performance
/// they induce.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// The MAC parameter vector `X`.
    pub params: Vec<f64>,
    /// System energy per epoch at these parameters.
    pub energy: Joules,
    /// Worst end-to-end latency at these parameters.
    pub latency: Seconds,
    /// Bottleneck channel utilization at these parameters.
    pub utilization: f64,
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "X = {:?} -> E = {:.5} J, L = {:.3} s (u = {:.3})",
            self.params,
            self.energy.value(),
            self.latency.value(),
            self.utilization
        )
    }
}

/// The framework entry point: a protocol model under a deployment and a
/// set of application requirements.
///
/// See the crate docs for the mapping to the paper's (P1)–(P4).
#[derive(Debug, Clone)]
pub struct TradeoffAnalysis<'a, M: MacModel + ?Sized> {
    model: &'a M,
    env: &'a Deployment,
    reqs: AppRequirements,
    /// One-slot memo of the last evaluated candidate: the penalized
    /// refinement phase evaluates the objective and each constraint as
    /// separate closures at the same `x`, and the solvers re-probe
    /// simplex points — without the memo every probe pays a full
    /// model evaluation.
    memo: CostMemo,
}

/// `(E, L, u)` at the last evaluated parameter vector.
type CostMemo = std::cell::RefCell<Option<(Vec<f64>, (f64, f64, f64))>>;

impl<'a, M: MacModel + ?Sized> TradeoffAnalysis<'a, M> {
    /// Creates an analysis for `model` under `env` and `reqs`.
    pub fn new(
        model: &'a M,
        env: &'a Deployment,
        reqs: AppRequirements,
    ) -> TradeoffAnalysis<'a, M> {
        TradeoffAnalysis {
            model,
            env,
            reqs,
            memo: std::cell::RefCell::new(None),
        }
    }

    /// The protocol model under analysis.
    pub fn model(&self) -> &M {
        self.model
    }

    /// The deployment.
    pub fn env(&self) -> &Deployment {
        self.env
    }

    /// The application requirements.
    pub fn requirements(&self) -> AppRequirements {
        self.reqs
    }

    /// Evaluates the model at `x`, reduced to `(E, L, u)` with
    /// non-finite values for invalid parameters; repeated evaluations
    /// at the same point hit the one-slot memo.
    fn costs(&self, x: &[f64]) -> (f64, f64, f64) {
        if let Some((cached_x, cached)) = self.memo.borrow().as_ref() {
            if cached_x.as_slice() == x {
                return *cached;
            }
        }
        let costs = match self.model.performance(x, self.env) {
            Ok(p) => (p.energy.value(), p.latency.value(), p.utilization),
            Err(_) => (f64::INFINITY, f64::INFINITY, f64::INFINITY),
        };
        let mut slot = self.memo.borrow_mut();
        match slot.as_mut() {
            Some((cached_x, cached)) => {
                cached_x.clear();
                cached_x.extend_from_slice(x);
                *cached = costs;
            }
            None => *slot = Some((x.to_vec(), costs)),
        }
        costs
    }

    fn operating_point(&self, x: &[f64]) -> Result<OperatingPoint, CoreError> {
        let perf = self.model.performance(x, self.env)?;
        Ok(OperatingPoint {
            params: x.to_vec(),
            energy: perf.energy,
            latency: perf.latency,
            utilization: perf.utilization,
        })
    }

    /// Solves a constrained minimization (the shared engine of (P1) and
    /// (P2)): minimize `objective` subject to `constraint <= limit` and
    /// the capacity cap, via a dense grid sweep followed by a penalized
    /// simplex refinement.
    fn constrained_min(
        &self,
        program: &'static str,
        objective: impl Fn(&(f64, f64, f64)) -> f64,
        constrained: impl Fn(&(f64, f64, f64)) -> f64,
        limit: f64,
    ) -> Result<OperatingPoint, CoreError> {
        let bounds = self.model.bounds(self.env);
        let cap = self.model.utilization_cap();

        // Global phase: sweep the box, fold constraints as infinities.
        let sweep = |x: &[f64]| {
            let c = self.costs(x);
            if constrained(&c) > limit || c.2 > cap || !c.0.is_finite() {
                f64::INFINITY
            } else {
                objective(&c)
            }
        };
        let seed = grid_minimize(sweep, &bounds, GRID).map_err(|e| match e {
            edmac_optim::OptimError::Infeasible => CoreError::Infeasible {
                program,
                reason: format!(
                    "no parameter of {} satisfies the constraint (limit {limit})",
                    self.model.name()
                ),
            },
            other => CoreError::Optim(other),
        })?;

        // Local phase: penalized refinement from the best cell.
        let g_limit = |x: &[f64]| constrained(&self.costs(x)) - limit;
        let g_cap = |x: &[f64]| self.costs(x).2 - cap;
        let refined = Penalty {
            local: NelderMead {
                max_iter: 400,
                ..NelderMead::default()
            },
            ..Penalty::default()
        }
        .minimize(
            |x| {
                let v = objective(&self.costs(x));
                if v.is_finite() {
                    v
                } else {
                    f64::MAX
                }
            },
            &[&g_limit, &g_cap],
            &seed.x,
            &bounds,
        );

        // The requirements are hard constraints: accept the refinement
        // only if it is better *and* exactly feasible, else keep the
        // feasible grid seed.
        let best = match refined {
            Ok(m) if m.value <= seed.value && g_limit(&m.x) <= 0.0 && g_cap(&m.x) <= 0.0 => m.x,
            _ => seed.x,
        };
        self.operating_point(&best)
    }

    /// **(P1)**: minimize energy subject to `L(X) ≤ Lmax` (and the
    /// bottleneck capacity cap). Returns the point realizing
    /// `(Ebest, Lworst)`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Infeasible`] if the latency bound is below the
    /// protocol's floor.
    pub fn energy_optimal(&self) -> Result<OperatingPoint, CoreError> {
        let lmax = self.reqs.latency_bound().value();
        self.constrained_min("P1", |c| c.0, |c| c.1, lmax)
    }

    /// **(P2)**: minimize latency subject to `E(X) ≤ Ebudget` (and the
    /// capacity cap). Returns the point realizing `(Eworst, Lbest)`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Infeasible`] if the energy budget is below the
    /// protocol's floor.
    pub fn latency_optimal(&self) -> Result<OperatingPoint, CoreError> {
        let budget = self.reqs.energy_budget().value();
        self.constrained_min("P2", |c| c.1, |c| c.0, budget)
    }

    /// **(P3)/(P4)**: the Nash Bargaining Solution between player
    /// Energy and player Latency, with disagreement point
    /// `v = (Eworst, Lworst)` and the application requirements as hard
    /// caps.
    ///
    /// Degenerate games — where (P1) and (P2) coincide, leaving no gain
    /// region — resolve to that single point, which is then trivially
    /// the agreement.
    ///
    /// # Errors
    ///
    /// Propagates infeasibility of (P1)/(P2) and solver failures.
    pub fn bargain(&self) -> Result<TradeoffReport, CoreError> {
        let energy_opt = self.energy_optimal()?;
        let latency_opt = self.latency_optimal()?;

        // Joint feasibility: the cheapest latency-feasible point must
        // fit the budget, else no parameter satisfies both requirements
        // and there is nothing to bargain over.
        if energy_opt.energy.value() > self.reqs.energy_budget().value() {
            return Err(CoreError::Infeasible {
                program: "P3",
                reason: format!(
                    "requirements are jointly infeasible for {}: the cheapest point \
                     meeting Lmax = {:.3} s costs {:.5} J > Ebudget = {:.5} J",
                    self.model.name(),
                    self.reqs.latency_bound().value(),
                    energy_opt.energy.value(),
                    self.reqs.energy_budget().value(),
                ),
            });
        }

        let disagreement = CostPoint::new(
            latency_opt.energy.value(), // Eworst: energy at the delay-optimal point
            energy_opt.latency.value(), // Lworst: latency at the energy-optimal point
        );
        let caps = CostPoint::new(
            self.reqs.energy_budget().value(),
            self.reqs.latency_bound().value(),
        );
        let bounds = self.model.bounds(self.env);
        let cap = self.model.utilization_cap();
        let costs = |x: &[f64]| {
            let c = self.costs(x);
            if c.2 > cap {
                CostPoint::new(f64::NAN, f64::NAN)
            } else {
                CostPoint::new(c.0, c.1)
            }
        };

        let nbs = match nash_continuous(costs, &bounds, disagreement, caps, GRID) {
            Ok(b) => self.operating_point(&b.params)?,
            Err(GameError::NoGainRegion) => {
                // (P1) and (P2) collapsed to (nearly) one point: the
                // game is degenerate and that point is the agreement.
                let p1 = &energy_opt;
                let p2 = &latency_opt;
                if p1.energy <= p2.energy {
                    p1.clone()
                } else {
                    p2.clone()
                }
            }
            Err(e) => return Err(CoreError::Game(e)),
        };

        let (fairness_energy, fairness_latency) = proportional_ratios(
            CostPoint::new(nbs.energy.value(), nbs.latency.value()),
            CostPoint::new(energy_opt.energy.value(), latency_opt.latency.value()),
            disagreement,
        );

        Ok(TradeoffReport {
            protocol: self.model.name(),
            requirements: self.reqs,
            energy_opt,
            latency_opt,
            nbs,
            fairness_energy,
            fairness_latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edmac_mac::{Dmac, Lmac, Xmac};

    fn reqs(budget_j: f64, lmax_s: f64) -> AppRequirements {
        AppRequirements::new(Joules::new(budget_j), Seconds::new(lmax_s)).unwrap()
    }

    #[test]
    fn p1_respects_latency_bound() {
        let model = Xmac::default();
        let env = Deployment::reference();
        for lmax in [0.8, 1.0, 2.0, 4.0] {
            let a = TradeoffAnalysis::new(&model, &env, reqs(0.06, lmax));
            let p = a.energy_optimal().unwrap();
            assert!(
                p.latency.value() <= lmax + 1e-6,
                "Lmax={lmax}: got L={}",
                p.latency.value()
            );
        }
    }

    #[test]
    fn p1_energy_improves_as_bound_relaxes() {
        let model = Xmac::default();
        let env = Deployment::reference();
        let tight = TradeoffAnalysis::new(&model, &env, reqs(0.06, 0.8))
            .energy_optimal()
            .unwrap();
        let loose = TradeoffAnalysis::new(&model, &env, reqs(0.06, 3.0))
            .energy_optimal()
            .unwrap();
        assert!(loose.energy <= tight.energy);
    }

    #[test]
    fn p1_saturates_once_bound_exceeds_unconstrained_optimum() {
        // X-MAC's energy-optimal latency sits near 2.3 s at the
        // reference deployment; Lmax = 4 and Lmax = 6 must coincide.
        let model = Xmac::default();
        let env = Deployment::reference();
        let a4 = TradeoffAnalysis::new(&model, &env, reqs(0.06, 4.0))
            .energy_optimal()
            .unwrap();
        let a6 = TradeoffAnalysis::new(&model, &env, reqs(0.06, 6.0))
            .energy_optimal()
            .unwrap();
        assert!((a4.energy.value() - a6.energy.value()).abs() < 1e-6 * a4.energy.value());
    }

    #[test]
    fn p2_respects_energy_budget() {
        let model = Lmac::default();
        let env = Deployment::reference();
        for budget in [0.02, 0.05, 0.1] {
            let a = TradeoffAnalysis::new(&model, &env, reqs(budget, 6.0));
            let p = a.latency_optimal().unwrap();
            assert!(
                p.energy.value() <= budget * (1.0 + 1e-6),
                "budget={budget}: got E={}",
                p.energy.value()
            );
        }
    }

    #[test]
    fn p2_latency_improves_with_budget() {
        let model = Lmac::default();
        let env = Deployment::reference();
        let poor = TradeoffAnalysis::new(&model, &env, reqs(0.02, 6.0))
            .latency_optimal()
            .unwrap();
        let rich = TradeoffAnalysis::new(&model, &env, reqs(0.15, 6.0))
            .latency_optimal()
            .unwrap();
        assert!(rich.latency <= poor.latency);
    }

    #[test]
    fn infeasible_latency_bound_is_reported() {
        // LMAC cannot deliver in 50 ms across ten rings.
        let model = Lmac::default();
        let env = Deployment::reference();
        let a = TradeoffAnalysis::new(&model, &env, reqs(0.06, 0.05));
        assert!(matches!(
            a.energy_optimal(),
            Err(CoreError::Infeasible { program: "P1", .. })
        ));
    }

    #[test]
    fn infeasible_energy_budget_is_reported() {
        // A nanojoule budget is below any protocol's floor.
        let model = Dmac::default();
        let env = Deployment::reference();
        let a = TradeoffAnalysis::new(&model, &env, reqs(1e-9, 6.0));
        assert!(matches!(
            a.latency_optimal(),
            Err(CoreError::Infeasible { program: "P2", .. })
        ));
    }

    #[test]
    fn bargain_dominates_disagreement_and_respects_caps() {
        let env = Deployment::reference();
        let r = reqs(0.06, 3.0);
        for model in edmac_mac::all_models() {
            let a = TradeoffAnalysis::new(model.as_ref(), &env, r);
            let report = a.bargain().unwrap();
            let eps = 1e-9;
            assert!(
                report.nbs.energy.value() <= report.latency_opt.energy.value() + eps,
                "{}: E* must not exceed Eworst",
                model.name()
            );
            assert!(
                report.nbs.latency.value() <= report.energy_opt.latency.value() + eps,
                "{}: L* must not exceed Lworst",
                model.name()
            );
            assert!(report.nbs.energy.value() <= 0.06 + eps, "{}", model.name());
            assert!(report.nbs.latency.value() <= 3.0 + eps, "{}", model.name());
        }
    }

    #[test]
    fn bargain_is_between_the_single_objective_extremes() {
        let model = Xmac::default();
        let env = Deployment::reference();
        let report = TradeoffAnalysis::new(&model, &env, reqs(0.06, 2.0))
            .bargain()
            .unwrap();
        assert!(report.nbs.energy >= report.energy_opt.energy);
        assert!(report.nbs.latency >= report.latency_opt.latency);
    }

    #[test]
    fn fairness_ratios_are_in_unit_interval() {
        let env = Deployment::reference();
        for model in edmac_mac::all_models() {
            let report = TradeoffAnalysis::new(model.as_ref(), &env, reqs(0.06, 4.0))
                .bargain()
                .unwrap();
            for r in [report.fairness_energy, report.fairness_latency] {
                assert!(
                    (-1e-6..=1.0 + 1e-6).contains(&r),
                    "{}: ratio {r} outside [0,1]",
                    model.name()
                );
            }
        }
    }
}
