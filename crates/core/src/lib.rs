//! The paper's contribution: a game-theoretic framework balancing energy
//! and end-to-end delay in duty-cycled MAC protocols.
//!
//! Given a protocol model (from `edmac-mac`), a deployment, and the
//! application requirements `(Ebudget, Lmax)`, the framework solves the
//! paper's three programs:
//!
//! * **(P1)** [`TradeoffAnalysis::energy_optimal`] — minimize `E(X)`
//!   s.t. `L(X) ≤ Lmax` → `(Ebest, Lworst)`;
//! * **(P2)** [`TradeoffAnalysis::latency_optimal`] — minimize `L(X)`
//!   s.t. `E(X) ≤ Ebudget` → `(Eworst, Lbest)`;
//! * **(P3/P4)** [`TradeoffAnalysis::bargain`] — the Nash Bargaining
//!   Solution with disagreement point `v = (Eworst, Lworst)`: maximize
//!   `(Eworst − E)(Lworst − L)` subject to the requirements, solved in
//!   its concave log form by the interior-point machinery of
//!   `edmac-game`/`edmac-optim`.
//!
//! The result is a [`TradeoffReport`] carrying all five anchor points
//! (`Ebest, Lworst, Eworst, Lbest, (E*, L*)`), the optimal MAC
//! parameters, and the proportional-fairness ratios the paper's closing
//! identity predicts to be equal.
//!
//! The game is played by the *metrics*, not the nodes: its size is
//! independent of the network's node count, which is the paper's
//! scalability claim (benchmarked in `edmac-bench`).
//!
//! # Example
//!
//! ```
//! use edmac_core::{AppRequirements, TradeoffAnalysis};
//! use edmac_mac::{Deployment, Xmac};
//! use edmac_units::{Joules, Seconds};
//!
//! let reqs = AppRequirements::new(Joules::new(0.06), Seconds::new(6.0)).unwrap();
//! let xmac = Xmac::default();
//! let env = Deployment::reference();
//! let analysis = TradeoffAnalysis::new(&xmac, &env, reqs);
//! let report = analysis.bargain().unwrap();
//! // The agreement respects both requirements ...
//! assert!(report.nbs.energy <= reqs.energy_budget());
//! assert!(report.nbs.latency <= reqs.latency_bound());
//! // ... and improves on the disagreement point for both players.
//! assert!(report.nbs.energy <= report.latency_opt.energy);
//! assert!(report.nbs.latency <= report.energy_opt.latency);
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs, missing_debug_implementations)]

mod analysis;
mod error;
pub mod experiments;
mod frontier;
mod grid;
mod ranking;
mod report;
mod requirements;
mod scenario;

pub use analysis::{OperatingPoint, TradeoffAnalysis};
pub use error::CoreError;
pub use frontier::{
    energy_span, frontier_csv, latency_span, sample_frontier, sample_pareto_frontier,
};
pub use grid::{disk_radius, GridCell, PresetKind, StudyGrid};
pub use ranking::{lifetime, rank_protocols, RankedOutcome, RankingPolicy};
pub use report::TradeoffReport;
pub use requirements::AppRequirements;
pub use scenario::{CoexistenceScenario, Scenario, TopologySpec, TrafficSpec};
