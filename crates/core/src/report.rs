//! The trade-off report: everything the paper's figures plot.

use crate::analysis::OperatingPoint;
use crate::requirements::AppRequirements;

/// The complete outcome of one bargaining run, carrying the paper's
/// five anchor quantities:
///
/// * `(Ebest, Lworst)` — [`TradeoffReport::energy_opt`], from (P1);
/// * `(Eworst, Lbest)` — [`TradeoffReport::latency_opt`], from (P2);
/// * `(E*, L*)` — [`TradeoffReport::nbs`], from (P3)/(P4);
///
/// plus the proportional-fairness ratios of the closing identity,
/// `(E* − Eworst)/(Ebest − Eworst)` and `(L* − Lworst)/(Lbest − Lworst)`
/// — equal at an exact Nash point on the paper's disagreement choice.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffReport {
    /// Protocol name.
    pub protocol: &'static str,
    /// The requirements this report was solved under.
    pub requirements: AppRequirements,
    /// (P1): the energy player's single-objective optimum
    /// `(Ebest, Lworst)`.
    pub energy_opt: OperatingPoint,
    /// (P2): the latency player's single-objective optimum
    /// `(Eworst, Lbest)`.
    pub latency_opt: OperatingPoint,
    /// (P3): the Nash bargaining agreement `(E*, L*)`.
    pub nbs: OperatingPoint,
    /// The energy player's concession fraction.
    pub fairness_energy: f64,
    /// The latency player's concession fraction.
    pub fairness_latency: f64,
}

impl TradeoffReport {
    /// `Ebest` in joules.
    pub fn e_best(&self) -> f64 {
        self.energy_opt.energy.value()
    }

    /// `Lworst` in seconds.
    pub fn l_worst(&self) -> f64 {
        self.energy_opt.latency.value()
    }

    /// `Eworst` in joules.
    pub fn e_worst(&self) -> f64 {
        self.latency_opt.energy.value()
    }

    /// `Lbest` in seconds.
    pub fn l_best(&self) -> f64 {
        self.latency_opt.latency.value()
    }

    /// `E*` in joules.
    pub fn e_star(&self) -> f64 {
        self.nbs.energy.value()
    }

    /// `L*` in seconds.
    pub fn l_star(&self) -> f64 {
        self.nbs.latency.value()
    }

    /// The absolute gap between the two fairness ratios: zero at an
    /// exact proportionally fair agreement.
    pub fn fairness_gap(&self) -> f64 {
        (self.fairness_energy - self.fairness_latency).abs()
    }

    /// Header for [`TradeoffReport::to_csv_row`], matching the series
    /// the paper's figures plot.
    pub fn csv_header() -> &'static str {
        "protocol,ebudget_j,lmax_s,e_best_j,l_worst_s,e_worst_j,l_best_s,\
         e_star_j,l_star_ms,fair_e,fair_l"
    }

    /// One CSV row (latencies of the agreement in milliseconds, like
    /// the paper's y-axes).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{:.6},{:.3},{:.6},{:.4},{:.6},{:.4},{:.6},{:.1},{:.4},{:.4}",
            self.protocol,
            self.requirements.energy_budget().value(),
            self.requirements.latency_bound().value(),
            self.e_best(),
            self.l_worst(),
            self.e_worst(),
            self.l_best(),
            self.e_star(),
            self.l_star() * 1_000.0,
            self.fairness_energy,
            self.fairness_latency,
        )
    }
}

impl std::fmt::Display for TradeoffReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} under {}", self.protocol, self.requirements)?;
        writeln!(
            f,
            "  P1 energy-opt : E_best  = {:.5} J, L_worst = {:.3} s  (X = {:?})",
            self.e_best(),
            self.l_worst(),
            self.energy_opt.params
        )?;
        writeln!(
            f,
            "  P2 delay-opt  : E_worst = {:.5} J, L_best  = {:.3} s  (X = {:?})",
            self.e_worst(),
            self.l_best(),
            self.latency_opt.params
        )?;
        writeln!(
            f,
            "  P3 Nash       : E*      = {:.5} J, L*      = {:.3} s  (X = {:?})",
            self.e_star(),
            self.l_star(),
            self.nbs.params
        )?;
        write!(
            f,
            "  fairness      : energy {:.4} vs latency {:.4} (gap {:.4})",
            self.fairness_energy,
            self.fairness_latency,
            self.fairness_gap()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edmac_units::{Joules, Seconds};

    fn point(e: f64, l: f64) -> OperatingPoint {
        OperatingPoint {
            params: vec![0.1],
            energy: Joules::new(e),
            latency: Seconds::new(l),
            utilization: 0.1,
        }
    }

    fn report() -> TradeoffReport {
        TradeoffReport {
            protocol: "X-MAC",
            requirements: AppRequirements::new(Joules::new(0.06), Seconds::new(3.0)).unwrap(),
            energy_opt: point(0.002, 2.5),
            latency_opt: point(0.02, 0.2),
            nbs: point(0.006, 1.2),
            fairness_energy: 0.78,
            fairness_latency: 0.57,
        }
    }

    #[test]
    fn accessors_map_to_the_papers_symbols() {
        let r = report();
        assert_eq!(r.e_best(), 0.002);
        assert_eq!(r.l_worst(), 2.5);
        assert_eq!(r.e_worst(), 0.02);
        assert_eq!(r.l_best(), 0.2);
        assert_eq!(r.e_star(), 0.006);
        assert_eq!(r.l_star(), 1.2);
        assert!((r.fairness_gap() - 0.21).abs() < 1e-12);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = report();
        let header_cols = TradeoffReport::csv_header().split(',').count();
        let row_cols = r.to_csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(r.to_csv_row().starts_with("X-MAC,"));
    }

    #[test]
    fn display_mentions_all_programs() {
        let text = report().to_string();
        for key in ["P1", "P2", "P3", "fairness"] {
            assert!(text.contains(key), "missing {key}");
        }
    }
}
