//! Application requirements: the framework's inputs.

use crate::error::CoreError;
use edmac_units::{Joules, Seconds};

/// The application's requirements, exactly as the paper frames them: a
/// per-node energy budget `Ebudget` (over the deployment's reporting
/// epoch) and a maximum tolerated end-to-end delay `Lmax`.
///
/// # Examples
///
/// ```
/// use edmac_core::AppRequirements;
/// use edmac_units::{Joules, Seconds};
///
/// // The paper's Fig. 1 setting: 0.06 J budget, 3 s delay bound.
/// let reqs = AppRequirements::new(Joules::new(0.06), Seconds::new(3.0)).unwrap();
/// assert_eq!(reqs.energy_budget().value(), 0.06);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppRequirements {
    energy_budget: Joules,
    latency_bound: Seconds,
}

impl AppRequirements {
    /// Creates requirements from a budget and a delay bound.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidRequirements`] unless both are
    /// positive and finite.
    pub fn new(
        energy_budget: Joules,
        latency_bound: Seconds,
    ) -> Result<AppRequirements, CoreError> {
        if !(energy_budget.is_finite() && energy_budget.value() > 0.0) {
            return Err(CoreError::InvalidRequirements {
                reason: format!(
                    "energy budget must be positive and finite, got {} J",
                    energy_budget.value()
                ),
            });
        }
        if !(latency_bound.is_finite() && latency_bound.value() > 0.0) {
            return Err(CoreError::InvalidRequirements {
                reason: format!(
                    "latency bound must be positive and finite, got {} s",
                    latency_bound.value()
                ),
            });
        }
        Ok(AppRequirements {
            energy_budget,
            latency_bound,
        })
    }

    /// The per-epoch energy budget `Ebudget`.
    pub fn energy_budget(&self) -> Joules {
        self.energy_budget
    }

    /// The end-to-end delay bound `Lmax`.
    pub fn latency_bound(&self) -> Seconds {
        self.latency_bound
    }

    /// Returns a copy with a different energy budget.
    ///
    /// # Errors
    ///
    /// Same contract as [`AppRequirements::new`].
    pub fn with_energy_budget(self, budget: Joules) -> Result<AppRequirements, CoreError> {
        AppRequirements::new(budget, self.latency_bound)
    }

    /// Returns a copy with a different latency bound.
    ///
    /// # Errors
    ///
    /// Same contract as [`AppRequirements::new`].
    pub fn with_latency_bound(self, bound: Seconds) -> Result<AppRequirements, CoreError> {
        AppRequirements::new(self.energy_budget, bound)
    }
}

impl std::fmt::Display for AppRequirements {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Ebudget = {:.4} J, Lmax = {:.3} s",
            self.energy_budget.value(),
            self.latency_bound.value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_positivity_and_finiteness() {
        assert!(AppRequirements::new(Joules::new(0.01), Seconds::new(1.0)).is_ok());
        assert!(AppRequirements::new(Joules::ZERO, Seconds::new(1.0)).is_err());
        assert!(AppRequirements::new(Joules::new(-0.1), Seconds::new(1.0)).is_err());
        assert!(AppRequirements::new(Joules::new(0.1), Seconds::ZERO).is_err());
        assert!(AppRequirements::new(Joules::new(f64::NAN), Seconds::new(1.0)).is_err());
        assert!(AppRequirements::new(Joules::new(0.1), Seconds::new(f64::INFINITY)).is_err());
    }

    #[test]
    fn with_methods_revalidate() {
        let reqs = AppRequirements::new(Joules::new(0.06), Seconds::new(6.0)).unwrap();
        assert!(reqs.with_energy_budget(Joules::new(0.01)).is_ok());
        assert!(reqs.with_energy_budget(Joules::new(-1.0)).is_err());
        assert!(reqs.with_latency_bound(Seconds::new(2.0)).is_ok());
        assert!(reqs.with_latency_bound(Seconds::ZERO).is_err());
    }

    #[test]
    fn display_shows_both() {
        let reqs = AppRequirements::new(Joules::new(0.06), Seconds::new(3.0)).unwrap();
        assert_eq!(reqs.to_string(), "Ebudget = 0.0600 J, Lmax = 3.000 s");
    }
}
