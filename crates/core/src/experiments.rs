//! Experiment presets regenerating the paper's evaluation.
//!
//! The brief announcement's evaluation is two figures of three subplots
//! each:
//!
//! * **Fig. 1** — fix `Ebudget = 0.06 J`, sweep `Lmax ∈ {1..6} s`; per
//!   protocol, plot the E–L frontier and the Nash trade-off points.
//! * **Fig. 2** — fix `Lmax = 6 s`, sweep
//!   `Ebudget ∈ {0.01..0.06} J`; same plots.
//!
//! [`fig1_sweep`] and [`fig2_sweep`] solve the corresponding bargaining
//! games; `edmac-bench`'s `fig1`/`fig2` binaries print them as CSV.

use crate::analysis::TradeoffAnalysis;
use crate::error::CoreError;
use crate::report::TradeoffReport;
use crate::requirements::AppRequirements;
use crate::scenario::Scenario;
use edmac_mac::{Deployment, MacModel};
use edmac_units::{Joules, Seconds};

/// The paper's fixed energy budget in Fig. 1.
pub const FIG1_ENERGY_BUDGET: Joules = Joules::new(0.06);

/// The paper's latency sweep in Fig. 1: 1 s to 6 s.
pub fn fig1_latency_bounds() -> Vec<Seconds> {
    (1..=6).map(|s| Seconds::new(s as f64)).collect()
}

/// The paper's fixed latency bound in Fig. 2.
pub const FIG2_LATENCY_BOUND: Seconds = Seconds::new(6.0);

/// The paper's budget sweep in Fig. 2: 0.01 J to 0.06 J.
pub fn fig2_energy_budgets() -> Vec<Joules> {
    (1..=6).map(|k| Joules::new(k as f64 / 100.0)).collect()
}

/// One figure sweep: the swept bound paired with each point's
/// bargaining outcome (infeasible bounds keep their error, mirroring
/// how the paper's plots simply lack those points).
pub type Sweep<B> = Vec<(B, Result<TradeoffReport, CoreError>)>;

/// Solves the Fig. 1 sweep for one protocol: `Ebudget` fixed at
/// [`FIG1_ENERGY_BUDGET`], `Lmax` swept over [`fig1_latency_bounds`].
///
/// Bounds that are infeasible for the protocol (below its latency
/// floor) are skipped with their error, mirroring how the paper's plots
/// simply lack those points.
pub fn fig1_sweep(model: &dyn MacModel, env: &Deployment) -> Sweep<Seconds> {
    fig1_latency_bounds()
        .into_iter()
        .map(|lmax| {
            let result = AppRequirements::new(FIG1_ENERGY_BUDGET, lmax)
                .and_then(|reqs| TradeoffAnalysis::new(model, env, reqs).bargain());
            (lmax, result)
        })
        .collect()
}

/// Solves the Fig. 2 sweep for one protocol: `Lmax` fixed at
/// [`FIG2_LATENCY_BOUND`], `Ebudget` swept over [`fig2_energy_budgets`].
pub fn fig2_sweep(model: &dyn MacModel, env: &Deployment) -> Sweep<Joules> {
    fig2_energy_budgets()
        .into_iter()
        .map(|budget| {
            let result = AppRequirements::new(budget, FIG2_LATENCY_BOUND)
                .and_then(|reqs| TradeoffAnalysis::new(model, env, reqs).bargain());
            (budget, result)
        })
        .collect()
}

/// [`fig1_sweep`] over any [`Scenario`] (ring scenarios reproduce the
/// paper's numbers exactly; disk and non-uniform scenarios run the
/// same bargaining over their empirical flow tables).
///
/// # Errors
///
/// Propagates scenario realization failures.
pub fn fig1_sweep_scenario(
    model: &dyn MacModel,
    scenario: &Scenario,
    seed: u64,
) -> Result<Sweep<Seconds>, CoreError> {
    let env = scenario.deployment(seed)?;
    Ok(fig1_sweep(model, &env))
}

/// [`fig2_sweep`] over any [`Scenario`].
///
/// # Errors
///
/// Propagates scenario realization failures.
pub fn fig2_sweep_scenario(
    model: &dyn MacModel,
    scenario: &Scenario,
    seed: u64,
) -> Result<Sweep<Joules>, CoreError> {
    let env = scenario.deployment(seed)?;
    Ok(fig2_sweep(model, &env))
}

/// Counts how many *distinct* trade-off points a sweep produced —
/// the saturation diagnostic for the paper's qualitative claims
/// (e.g. X-MAC's Fig. 1a shows 3 distinct points across 6 bounds:
/// `Lmax = 1 s`, `2 s`, and one shared by `3..6 s`).
///
/// Two points are identical when both coordinates agree within `tol`
/// (relative).
pub fn distinct_points(reports: &[&TradeoffReport], tol: f64) -> usize {
    let mut kept: Vec<(f64, f64)> = Vec::new();
    for r in reports {
        let p = (r.e_star(), r.l_star());
        let dup = kept.iter().any(|q| {
            let de = (p.0 - q.0).abs() <= tol * q.0.abs().max(1e-12);
            let dl = (p.1 - q.1).abs() <= tol * q.1.abs().max(1e-12);
            de && dl
        });
        if !dup {
            kept.push(p);
        }
    }
    kept.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edmac_mac::{Dmac, Lmac, Xmac};

    #[test]
    fn sweep_grids_match_the_paper() {
        assert_eq!(fig1_latency_bounds().len(), 6);
        assert_eq!(fig2_energy_budgets().len(), 6);
        assert_eq!(fig1_latency_bounds()[0], Seconds::new(1.0));
        assert_eq!(fig2_energy_budgets()[5], Joules::new(0.06));
        assert_eq!(FIG1_ENERGY_BUDGET.value(), 0.06);
        assert_eq!(FIG2_LATENCY_BOUND.value(), 6.0);
    }

    #[test]
    fn fig1_xmac_saturates_like_the_paper() {
        // Paper Fig. 1a: distinct points at Lmax = 1 s and 2 s, a shared
        // point for 3..6 s.
        let env = Deployment::reference();
        let sweep = fig1_sweep(&Xmac::default(), &env);
        let reports: Vec<&TradeoffReport> =
            sweep.iter().filter_map(|(_, r)| r.as_ref().ok()).collect();
        assert_eq!(reports.len(), 6, "all bounds feasible for X-MAC");
        let distinct = distinct_points(&reports, 0.02);
        assert!(
            (2..=4).contains(&distinct),
            "X-MAC should saturate mid-sweep (got {distinct} distinct points)"
        );
        // The last three bounds give the same agreement.
        let tail: Vec<&TradeoffReport> = reports[3..].to_vec();
        assert_eq!(
            distinct_points(&tail, 0.02),
            1,
            "Lmax = 4,5,6 s must coincide"
        );
    }

    #[test]
    fn fig1_lmac_never_saturates() {
        // Paper Fig. 1c: all six trade-off points distinct.
        let env = Deployment::reference();
        let sweep = fig1_sweep(&Lmac::default(), &env);
        let reports: Vec<&TradeoffReport> =
            sweep.iter().filter_map(|(_, r)| r.as_ref().ok()).collect();
        assert_eq!(distinct_points(&reports, 0.02), reports.len());
    }

    #[test]
    fn fig2_budget_relaxation_favors_latency_player() {
        // Paper Fig. 2: raising Ebudget moves agreements toward lower
        // delay.
        let env = Deployment::reference();
        for model in [&Dmac::default() as &dyn MacModel, &Lmac::default()] {
            let sweep = fig2_sweep(model, &env);
            let reports: Vec<&TradeoffReport> =
                sweep.iter().filter_map(|(_, r)| r.as_ref().ok()).collect();
            assert!(reports.len() >= 3, "{}", model.name());
            let first = reports.first().unwrap();
            let last = reports.last().unwrap();
            assert!(
                last.l_star() <= first.l_star() + 1e-9,
                "{}: L* should fall as the budget grows ({} -> {})",
                model.name(),
                first.l_star(),
                last.l_star()
            );
        }
    }

    #[test]
    fn distinct_points_counts_with_tolerance() {
        use crate::analysis::OperatingPoint;
        let mk = |e: f64, l: f64| TradeoffReport {
            protocol: "T",
            requirements: AppRequirements::new(Joules::new(1.0), Seconds::new(1.0)).unwrap(),
            energy_opt: OperatingPoint {
                params: vec![],
                energy: Joules::new(e),
                latency: Seconds::new(l),
                utilization: 0.0,
            },
            latency_opt: OperatingPoint {
                params: vec![],
                energy: Joules::new(e),
                latency: Seconds::new(l),
                utilization: 0.0,
            },
            nbs: OperatingPoint {
                params: vec![],
                energy: Joules::new(e),
                latency: Seconds::new(l),
                utilization: 0.0,
            },
            fairness_energy: 0.0,
            fairness_latency: 0.0,
        };
        let a = mk(1.0, 1.0);
        let b = mk(1.001, 1.001); // within 1% of a
        let c = mk(2.0, 2.0);
        assert_eq!(distinct_points(&[&a, &b, &c], 0.01), 2);
        assert_eq!(distinct_points(&[&a, &b, &c], 1e-6), 3);
        assert_eq!(distinct_points(&[], 0.01), 0);
    }

    #[test]
    fn scenario_api_reproduces_the_paper_ring_numbers() {
        // The acceptance bar for the scenario layer: routing the figure
        // sweeps through `Scenario::paper_reference()` must land on the
        // same trade-off points as the legacy hard-wired deployment —
        // not approximately, identically.
        let legacy = Deployment::reference();
        let scenario = Scenario::paper_reference();
        for model in [&Xmac::default() as &dyn MacModel, &Lmac::default()] {
            let old = fig1_sweep(model, &legacy);
            let new = fig1_sweep_scenario(model, &scenario, 0).unwrap();
            assert_eq!(old.len(), new.len());
            for ((lmax_a, a), (lmax_b, b)) in old.iter().zip(&new) {
                assert_eq!(lmax_a, lmax_b);
                match (a, b) {
                    (Ok(ra), Ok(rb)) => {
                        assert_eq!(ra.e_star(), rb.e_star(), "{} @ {lmax_a}", model.name());
                        assert_eq!(ra.l_star(), rb.l_star(), "{} @ {lmax_a}", model.name());
                    }
                    (Err(_), Err(_)) => {}
                    _ => panic!("{}: feasibility flipped at {lmax_a}", model.name()),
                }
            }
        }
    }

    #[test]
    fn fig_sweeps_run_on_disk_and_hotspot_scenarios() {
        // Off-ring scenarios must run the same bargaining end-to-end:
        // every feasible bound yields an agreement inside requirements.
        let period = Seconds::new(600.0);
        for scenario in [
            Scenario::uniform_disk(60, 2.5, period),
            Scenario::hotspot_disk(60, 2.5, period),
        ] {
            let sweep = fig2_sweep_scenario(&Xmac::default(), &scenario, 11).unwrap();
            let feasible: Vec<_> = sweep.iter().filter_map(|(_, r)| r.as_ref().ok()).collect();
            assert!(
                !feasible.is_empty(),
                "{}: no feasible budget in the fig2 sweep",
                scenario.name
            );
            for r in feasible {
                assert!(r.nbs.latency.value() <= FIG2_LATENCY_BOUND.value() + 1e-9);
            }
        }
    }
}
