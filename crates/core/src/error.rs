//! Error type for the framework.

use edmac_game::GameError;
use edmac_mac::MacError;
use edmac_net::NetError;
use edmac_optim::OptimError;

/// Errors from the trade-off framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The application requirements were not physically meaningful.
    InvalidRequirements {
        /// What was wrong.
        reason: String,
    },
    /// No parameter point satisfies the stated constraints (e.g. the
    /// latency bound is below the protocol's floor, or the energy
    /// budget below its idle cost).
    Infeasible {
        /// Which program had an empty feasible set (`"P1"`, `"P2"`,
        /// `"P3"`).
        program: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// A protocol model rejected its inputs.
    Mac(MacError),
    /// The bargaining layer failed.
    Game(GameError),
    /// A numerical solver failed.
    Optim(OptimError),
    /// A scenario's topology or traffic realization failed.
    Net(NetError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidRequirements { reason } => {
                write!(f, "invalid application requirements: {reason}")
            }
            CoreError::Infeasible { program, reason } => {
                write!(f, "{program} is infeasible: {reason}")
            }
            CoreError::Mac(e) => write!(f, "protocol model error: {e}"),
            CoreError::Game(e) => write!(f, "bargaining error: {e}"),
            CoreError::Optim(e) => write!(f, "solver error: {e}"),
            CoreError::Net(e) => write!(f, "scenario realization error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Mac(e) => Some(e),
            CoreError::Game(e) => Some(e),
            CoreError::Optim(e) => Some(e),
            CoreError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MacError> for CoreError {
    fn from(e: MacError) -> CoreError {
        CoreError::Mac(e)
    }
}

impl From<GameError> for CoreError {
    fn from(e: GameError) -> CoreError {
        CoreError::Game(e)
    }
}

impl From<OptimError> for CoreError {
    fn from(e: OptimError) -> CoreError {
        CoreError::Optim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn sources_chain() {
        let e = CoreError::from(OptimError::Infeasible);
        assert!(e.source().is_some());
        let e = CoreError::from(GameError::EmptyFeasibleSet);
        assert!(e.source().is_some());
    }

    #[test]
    fn infeasible_names_the_program() {
        let e = CoreError::Infeasible {
            program: "P1",
            reason: "latency bound below protocol floor".into(),
        };
        assert!(e.to_string().starts_with("P1 is infeasible"));
    }
}
