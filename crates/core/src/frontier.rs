//! Sampling a protocol's energy–latency frontier (the curves the
//! paper's figures draw through the trade-off points).

use crate::analysis::OperatingPoint;
use edmac_game::{pareto_filter, CostPoint};
use edmac_mac::{Deployment, MacModel};
use edmac_units::{Joules, Seconds};

/// Sweeps the model's parameter box with `n` uniform samples per
/// dimension and returns the feasible (capacity-respecting) operating
/// points, in sweep order.
///
/// One-dimensional models (the paper's three) produce exactly the curve
/// plotted in Fig. 1/2.
pub fn sample_frontier(model: &dyn MacModel, env: &Deployment, n: usize) -> Vec<OperatingPoint> {
    let bounds = model.bounds(env);
    let dims = bounds.len();
    let n = n.max(2);
    let total = n.pow(dims as u32);
    let cap = model.utilization_cap();
    let mut out = Vec::new();
    let mut x = vec![0.0; dims];
    for flat in 0..total {
        let mut rem = flat;
        for (i, xi) in x.iter_mut().enumerate() {
            let k = rem % n;
            rem /= n;
            *xi = bounds.lower(i) + bounds.width(i) * k as f64 / (n - 1) as f64;
        }
        if let Ok(perf) = model.performance(&x, env) {
            if perf.utilization <= cap {
                out.push(OperatingPoint {
                    params: x.clone(),
                    energy: perf.energy,
                    latency: perf.latency,
                    utilization: perf.utilization,
                });
            }
        }
    }
    out
}

/// Like [`sample_frontier`], but reduced to the Pareto-optimal subset,
/// sorted by increasing energy.
pub fn sample_pareto_frontier(
    model: &dyn MacModel,
    env: &Deployment,
    n: usize,
) -> Vec<OperatingPoint> {
    let all = sample_frontier(model, env, n);
    let costs: Vec<CostPoint> = all
        .iter()
        .map(|p| CostPoint::new(p.energy.value(), p.latency.value()))
        .collect();
    let frontier = pareto_filter(&costs);
    // Recover the operating points for each frontier cost pair (first
    // match wins; duplicates are equivalent).
    frontier
        .into_iter()
        .filter_map(|fp| {
            all.iter()
                .find(|p| p.energy.value() == fp.x && p.latency.value() == fp.y)
                .cloned()
        })
        .collect()
}

/// Formats sampled points as CSV (`energy_j,latency_ms,param0,...`),
/// ready for plotting against the paper's axes.
pub fn frontier_csv(points: &[OperatingPoint]) -> String {
    let mut out = String::from("energy_j,latency_ms,params\n");
    for p in points {
        out.push_str(&format!(
            "{:.6},{:.1},{:?}\n",
            p.energy.value(),
            p.latency.value() * 1_000.0,
            p.params
        ));
    }
    out
}

/// Convenience for tests and benches: the frontier's energy extent.
pub fn energy_span(points: &[OperatingPoint]) -> (Joules, Joules) {
    let lo = points
        .iter()
        .map(|p| p.energy.value())
        .fold(f64::INFINITY, f64::min);
    let hi = points
        .iter()
        .map(|p| p.energy.value())
        .fold(f64::NEG_INFINITY, f64::max);
    (Joules::new(lo), Joules::new(hi))
}

/// Convenience for tests and benches: the frontier's latency extent.
pub fn latency_span(points: &[OperatingPoint]) -> (Seconds, Seconds) {
    let lo = points
        .iter()
        .map(|p| p.latency.value())
        .fold(f64::INFINITY, f64::min);
    let hi = points
        .iter()
        .map(|p| p.latency.value())
        .fold(f64::NEG_INFINITY, f64::max);
    (Seconds::new(lo), Seconds::new(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edmac_mac::{Lmac, Xmac};

    #[test]
    fn frontier_sampling_is_feasible_and_dense() {
        let env = Deployment::reference();
        let model = Xmac::default();
        let points = sample_frontier(&model, &env, 100);
        assert!(points.len() > 90, "most of the box should be feasible");
        for p in &points {
            assert!(p.utilization <= model.utilization_cap());
            assert!(p.energy.value() > 0.0);
        }
    }

    #[test]
    fn pareto_subset_is_monotone() {
        let env = Deployment::reference();
        let model = Xmac::default();
        let pareto = sample_pareto_frontier(&model, &env, 200);
        assert!(pareto.len() > 10);
        for w in pareto.windows(2) {
            assert!(w[0].energy < w[1].energy);
            assert!(w[0].latency > w[1].latency, "cost trade-off must be strict");
        }
    }

    #[test]
    fn lmac_whole_range_is_pareto() {
        // LMAC is strictly monotone in both metrics: nothing dominated.
        let env = Deployment::reference();
        let model = Lmac::default();
        let all = sample_frontier(&model, &env, 50);
        let pareto = sample_pareto_frontier(&model, &env, 50);
        assert_eq!(all.len(), pareto.len());
    }

    #[test]
    fn spans_cover_expected_magnitudes() {
        let env = Deployment::reference();
        let pareto = sample_pareto_frontier(&Xmac::default(), &env, 200);
        let (e_lo, e_hi) = energy_span(&pareto);
        let (l_lo, l_hi) = latency_span(&pareto);
        assert!(e_lo.value() > 1e-4 && e_hi.value() < 1.0);
        assert!(l_lo.value() > 0.01 && l_hi.value() < 10.0);
    }

    #[test]
    fn csv_has_one_line_per_point_plus_header() {
        let env = Deployment::reference();
        let points = sample_frontier(&Xmac::default(), &env, 20);
        let csv = frontier_csv(&points);
        assert_eq!(csv.lines().count(), points.len() + 1);
        assert!(csv.starts_with("energy_j,latency_ms"));
    }
}
