//! Scenarios: topology source × traffic pattern, realizable on both
//! sides of the evidence chain.
//!
//! The paper's evaluation lives on ring deployments; the interesting
//! game-theoretic behavior (Khodaian et al.; Yang & Smith, see
//! PAPERS.md) appears exactly off that regular-ring assumption. A
//! [`Scenario`] names a workload once and realizes it twice:
//!
//! * [`Scenario::deployment`] — the analytic side: a
//!   [`Deployment`] whose per-depth flow table comes from the ring
//!   closed forms (ring scenarios, bit-identical to the legacy
//!   hard-wired `Deployment`) or empirically from a realized topology
//!   (everything else), ready for [`TradeoffAnalysis`] and the
//!   `fig1`/`fig2` sweeps;
//! * [`Scenario::simulation`] — the packet-level side: a built
//!   [`Simulation`] over the same topology with the matching per-node
//!   [`TrafficProfile`].
//!
//! [`TradeoffAnalysis`]: crate::TradeoffAnalysis

use crate::error::CoreError;
use edmac_mac::{BurstRegime, Deployment, Workload};
use edmac_net::{NetError, RingModel, Topology};
use edmac_phy::ChannelModel;
use edmac_radio::{FrameSizes, Radio};
use edmac_sim::{BurstWindows, CoexNetwork, SimConfig, SimProtocol, Simulation, TrafficProfile};
use edmac_units::{Hertz, Seconds};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Where the nodes are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologySpec {
    /// The paper's concentric-ring deployment: `depth` rings of
    /// density `density` (plus the sink).
    Ring {
        /// Number of rings `D`.
        depth: usize,
        /// Unit-disk density `C`.
        density: usize,
    },
    /// `nodes` nodes scattered uniformly in a disk of `field_radius`
    /// radio-range units around the sink.
    UniformDisk {
        /// Total node count, sink included.
        nodes: usize,
        /// Field radius in range units.
        field_radius: f64,
    },
    /// A 1-D chain, sink at one end.
    Line {
        /// Total node count.
        nodes: usize,
        /// Spacing in range units, in `(0, 1]`.
        spacing: f64,
    },
    /// A lattice with the sink at a corner.
    Grid {
        /// Columns.
        cols: usize,
        /// Rows.
        rows: usize,
        /// Spacing in range units, in `(0, 1]`.
        spacing: f64,
    },
}

impl TopologySpec {
    /// Realizes the geometry (seeded: random topologies are
    /// reproducible per seed; deterministic ones ignore it).
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`Topology`] constructor errors
    /// (invalid parameters, disconnected draws).
    pub fn realize(&self, seed: u64) -> Result<Topology, NetError> {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            TopologySpec::Ring { depth, density } => Topology::ring_model(depth, density, &mut rng),
            TopologySpec::UniformDisk {
                nodes,
                field_radius,
            } => Topology::uniform_disk(nodes, field_radius, &mut rng),
            TopologySpec::Line { nodes, spacing } => Topology::line(nodes, spacing),
            TopologySpec::Grid {
                cols,
                rows,
                spacing,
            } => Topology::grid(cols, rows, spacing),
        }
    }
}

/// Who talks, and how fast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficSpec {
    /// Every non-sink node samples at the same mean period.
    Uniform {
        /// Mean sampling period.
        sample_period: Seconds,
    },
    /// A spatial hotspot: the `fraction` of nodes nearest the hotspot
    /// center (half the field extent out on the +x axis) sample
    /// `factor`× faster than the rest.
    Hotspot {
        /// Baseline sampling period.
        sample_period: Seconds,
        /// Rate multiplier inside the hotspot (`> 1`).
        factor: f64,
        /// Fraction of non-sink nodes in the hotspot, in `(0, 1)`.
        fraction: f64,
    },
    /// Event-driven sensing: everyone samples at the baseline, and
    /// synchronized burst windows multiply the rate `factor`× for
    /// `duration` out of every `every` seconds.
    EventBurst {
        /// Baseline sampling period.
        sample_period: Seconds,
        /// Rate multiplier inside a burst window.
        factor: f64,
        /// Interval between burst onsets.
        every: Seconds,
        /// Burst window length.
        duration: Seconds,
    },
}

impl TrafficSpec {
    /// The baseline sampling period.
    pub fn sample_period(&self) -> Seconds {
        match *self {
            TrafficSpec::Uniform { sample_period }
            | TrafficSpec::Hotspot { sample_period, .. }
            | TrafficSpec::EventBurst { sample_period, .. } => sample_period,
        }
    }

    /// The window-conditional rate structure of this traffic pattern
    /// (`None` for patterns without synchronized bursts; degenerate
    /// windows normalize to `None` too).
    pub fn burst_regime(&self) -> Option<BurstRegime> {
        match *self {
            TrafficSpec::EventBurst {
                factor,
                every,
                duration,
                ..
            } => BurstRegime::new(factor, every, duration),
            _ => None,
        }
    }

    /// The time-averaged per-node sampling rates on `topology` (what
    /// the analytic flow table sees; the energy terms are linear in
    /// the rates, so burst duty cycles fold into the mean exactly —
    /// the latency side reads the regime via
    /// [`TrafficSpec::burst_regime`] instead).
    fn node_rates(&self, topology: &Topology) -> Vec<Hertz> {
        let base = Hertz::per_interval(self.sample_period());
        match *self {
            TrafficSpec::Uniform { .. } => vec![base; topology.len()],
            TrafficSpec::Hotspot {
                factor, fraction, ..
            } => {
                let mut rates = vec![base; topology.len()];
                for idx in hotspot_nodes(topology, fraction) {
                    rates[idx] = base * factor;
                }
                rates
            }
            TrafficSpec::EventBurst {
                factor,
                every,
                duration,
                ..
            } => {
                let duty = (duration.value() / every.value()).clamp(0.0, 1.0);
                vec![base * (1.0 + (factor - 1.0) * duty); topology.len()]
            }
        }
    }

    /// The packet-level profile on `topology`.
    fn profile(&self, topology: &Topology) -> TrafficProfile {
        let n = topology.len();
        match *self {
            TrafficSpec::Uniform { sample_period } => TrafficProfile::uniform(n, sample_period),
            TrafficSpec::Hotspot {
                sample_period,
                factor,
                fraction,
            } => {
                let mut profile = TrafficProfile::uniform(n, sample_period);
                for idx in hotspot_nodes(topology, fraction) {
                    profile.periods[idx] = Seconds::new(sample_period.value() / factor);
                }
                profile
            }
            TrafficSpec::EventBurst {
                sample_period,
                factor,
                every,
                duration,
            } => TrafficProfile::uniform(n, sample_period).with_bursts(BurstWindows {
                every,
                duration,
                factor,
            }),
        }
    }
}

/// The non-sink nodes nearest the hotspot center, deterministically:
/// the center sits half the field extent out on the +x axis, and the
/// `fraction` closest nodes (at least one) form the hotspot.
fn hotspot_nodes(topology: &Topology, fraction: f64) -> Vec<usize> {
    let extent = topology
        .positions()
        .iter()
        .map(|p| p.distance(edmac_net::Point2::ORIGIN))
        .fold(0.0f64, f64::max);
    let center = edmac_net::Point2::new(extent / 2.0, 0.0);
    let sink = topology.sink().index();
    let mut by_distance: Vec<usize> = (0..topology.len()).filter(|&i| i != sink).collect();
    by_distance.sort_by(|&a, &b| {
        let da = topology.positions()[a].distance_squared(center);
        let db = topology.positions()[b].distance_squared(center);
        da.partial_cmp(&db)
            .expect("finite positions")
            .then(a.cmp(&b))
    });
    let count =
        ((by_distance.len() as f64 * fraction).floor() as usize).clamp(1, by_distance.len());
    by_distance.truncate(count);
    by_distance
}

/// A named workload: topology source × traffic pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name (CSV label in the `scenarios` binary and bench).
    pub name: String,
    /// Where the nodes are.
    pub topology: TopologySpec,
    /// Who talks, and how fast.
    pub traffic: TrafficSpec,
}

impl Scenario {
    /// A ring scenario (the paper's shape) with uniform traffic.
    pub fn ring(depth: usize, density: usize, sample_period: Seconds) -> Scenario {
        Scenario {
            name: format!("ring_d{depth}_c{density}"),
            topology: TopologySpec::Ring { depth, density },
            traffic: TrafficSpec::Uniform { sample_period },
        }
    }

    /// The reference ring the figures run on (`D = 10`, `C = 4`,
    /// hourly sampling) — [`Scenario::deployment`] reproduces
    /// [`Deployment::reference`]'s flow table exactly.
    pub fn paper_reference() -> Scenario {
        Scenario::ring(10, 4, Seconds::new(3_600.0))
    }

    /// The validation ring (`D = 4`, `C = 4`, 80 s sampling).
    pub fn validation_ring() -> Scenario {
        Scenario::ring(4, 4, Seconds::new(80.0))
    }

    /// A uniform-disk field with uniform traffic.
    pub fn uniform_disk(nodes: usize, field_radius: f64, sample_period: Seconds) -> Scenario {
        Scenario {
            name: format!("disk_n{nodes}"),
            topology: TopologySpec::UniformDisk {
                nodes,
                field_radius,
            },
            traffic: TrafficSpec::Uniform { sample_period },
        }
    }

    /// A uniform-disk field with a 3×-rate hotspot covering a quarter
    /// of the nodes.
    pub fn hotspot_disk(nodes: usize, field_radius: f64, sample_period: Seconds) -> Scenario {
        Scenario {
            name: format!("hotspot_n{nodes}"),
            topology: TopologySpec::UniformDisk {
                nodes,
                field_radius,
            },
            traffic: TrafficSpec::Hotspot {
                sample_period,
                factor: 3.0,
                fraction: 0.25,
            },
        }
    }

    /// A uniform-disk field with event bursts: 4× the sampling rate
    /// for 30 s out of every 300 s.
    pub fn event_burst_disk(nodes: usize, field_radius: f64, sample_period: Seconds) -> Scenario {
        Scenario {
            name: format!("burst_n{nodes}"),
            topology: TopologySpec::UniformDisk {
                nodes,
                field_radius,
            },
            traffic: TrafficSpec::EventBurst {
                sample_period,
                factor: 4.0,
                every: Seconds::new(300.0),
                duration: Seconds::new(30.0),
            },
        }
    }

    /// The analytic deployment for this scenario: ring topologies with
    /// uniform traffic use the exact closed-form flow table (so the
    /// paper's figure sweeps reproduce unchanged); everything else
    /// realizes the topology at `seed` and tabulates worst-case
    /// empirical flows.
    ///
    /// # Errors
    ///
    /// Propagates topology realization failures as [`CoreError::Net`].
    pub fn deployment(&self, seed: u64) -> Result<Deployment, CoreError> {
        if let Some(ring) = self.ring_closed_form()? {
            return Ok(ring);
        }
        let topology = self.topology.realize(seed).map_err(CoreError::Net)?;
        self.deployment_from(&topology)
    }

    /// Like [`Scenario::deployment`], but reusing an already-realized
    /// topology — callers that need the geometry anyway (the study
    /// harness computes irregularity metrics from it) avoid a second
    /// realization. Ring scenarios with uniform traffic still use the
    /// exact closed-form flow table, ignoring `topology`.
    ///
    /// # Errors
    ///
    /// Propagates flow-table construction failures as
    /// [`CoreError::Net`].
    pub fn deployment_from(&self, topology: &Topology) -> Result<Deployment, CoreError> {
        if let Some(ring) = self.ring_closed_form()? {
            return Ok(ring);
        }
        let fs = Hertz::per_interval(self.traffic.sample_period());
        let rates = self.traffic.node_rates(topology);
        let workload = Workload::from_node_rates(topology, fs, &rates)
            .map_err(CoreError::Net)?
            .with_burst(self.traffic.burst_regime());
        Ok(Deployment::reference().with_traffic(workload))
    }

    /// The analytic closed-form deployment, for ring topologies with
    /// uniform traffic (`None` for every other combination).
    fn ring_closed_form(&self) -> Result<Option<Deployment>, CoreError> {
        let (TopologySpec::Ring { depth, density }, TrafficSpec::Uniform { .. }) =
            (self.topology, self.traffic)
        else {
            return Ok(None);
        };
        let fs = Hertz::per_interval(self.traffic.sample_period());
        let model = RingModel::new(depth, density).map_err(CoreError::Net)?;
        Ok(Some(
            Deployment::reference()
                .with_network(model)
                .with_sampling(fs),
        ))
    }

    /// Builds the packet-level simulation: the topology realized from
    /// `config.seed`, CC2420 radio, default frames, and this
    /// scenario's traffic profile.
    ///
    /// # Errors
    ///
    /// Propagates topology and simulation build failures as
    /// [`CoreError::Net`].
    pub fn simulation(
        &self,
        protocol: &dyn SimProtocol,
        config: SimConfig,
    ) -> Result<Simulation, CoreError> {
        let topology = self.topology.realize(config.seed).map_err(CoreError::Net)?;
        let config = SimConfig {
            sample_period: self.traffic.sample_period(),
            ..config
        };
        let sim = Simulation::build(
            &topology,
            Radio::cc2420(),
            FrameSizes::default(),
            protocol,
            config,
        )
        .map_err(CoreError::Net)?;
        sim.with_traffic(self.traffic.profile(&topology))
            .map_err(CoreError::Net)
    }
}

/// `K` independent duty-cycled networks — each with its own sink,
/// routing tree and derived seed — deployed side by side on **one
/// shared channel**, so every network's transmissions are interference
/// (or, on the binary channel, collision sources) in all the others.
///
/// This is the workload the coexistence study cells bargain over:
/// each network plans its MAC parameters for itself, but the channel
/// couples their outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct CoexistenceScenario {
    /// Display name (CSV label in the study artifacts).
    pub name: String,
    /// The per-network deployment shape (every network uses the same
    /// spec, realized under a different derived seed).
    pub topology: TopologySpec,
    /// Number of networks `K`.
    pub networks: usize,
    /// Center-to-center spacing between consecutive networks along the
    /// +x axis, in radio-range units. Small separations overlap the
    /// fields; large ones decouple them (the SINR interference range
    /// with default parameters is ≈ 3.2 range units).
    pub separation: f64,
    /// Uniform per-node sampling period inside every network.
    pub sample_period: Seconds,
}

/// Decorrelates network `k`'s realization seed from the scenario seed
/// (splitmix64 finalizer over a golden-ratio stride).
fn network_seed(seed: u64, k: u64) -> u64 {
    let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CoexistenceScenario {
    /// The reference coexistence preset: `networks` two-ring
    /// deployments (13 nodes each) spaced `separation` range units
    /// apart, sampling every 60 s.
    pub fn preset(networks: usize, separation: f64) -> CoexistenceScenario {
        CoexistenceScenario {
            name: format!("coex_k{networks}_s{separation}"),
            topology: TopologySpec::Ring {
                depth: 2,
                density: 3,
            },
            networks,
            separation,
            sample_period: Seconds::new(60.0),
        }
    }

    /// Realizes the `K` network topologies: network `k` is drawn from
    /// the shared [`TopologySpec`] under a derived seed and translated
    /// `k · separation` range units out on the +x axis.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidParameter`] for zero networks or a
    /// non-finite/negative separation, and propagates realization
    /// failures of the underlying topology constructor.
    pub fn realize(&self, seed: u64) -> Result<Vec<Topology>, NetError> {
        if self.networks == 0 {
            return Err(NetError::InvalidParameter {
                name: "networks",
                reason: "a coexistence scenario needs at least one network".into(),
            });
        }
        if !(self.separation >= 0.0 && self.separation.is_finite()) {
            return Err(NetError::InvalidParameter {
                name: "separation",
                reason: format!("must be non-negative and finite, got {}", self.separation),
            });
        }
        (0..self.networks)
            .map(|k| {
                let topo = self.topology.realize(network_seed(seed, k as u64))?;
                Ok(topo.translated(k as f64 * self.separation, 0.0))
            })
            .collect()
    }

    /// Builds the shared-channel simulation: one protocol per network
    /// (in network order), CC2420 radio, default frames, the scenario's
    /// sampling period, and `channel` realized over the union of all
    /// node positions. Run it with
    /// [`Simulation::run_coexistence`] for one report per network.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Net`] with [`NetError::InvalidParameter`] if the
    ///   protocol panel does not cover the networks one-to-one.
    /// * Realization and build failures as [`CoreError::Net`].
    pub fn simulation(
        &self,
        protocols: &[&dyn SimProtocol],
        channel: &dyn ChannelModel,
        config: SimConfig,
    ) -> Result<Simulation, CoreError> {
        if protocols.len() != self.networks {
            return Err(CoreError::Net(NetError::InvalidParameter {
                name: "protocols",
                reason: format!(
                    "{} networks need {} protocols, got {}",
                    self.networks,
                    self.networks,
                    protocols.len()
                ),
            }));
        }
        let topologies = self.realize(config.seed).map_err(CoreError::Net)?;
        let config = SimConfig {
            sample_period: self.sample_period,
            ..config
        };
        let networks: Vec<CoexNetwork<'_>> = topologies
            .iter()
            .zip(protocols)
            .map(|(topology, &protocol)| CoexNetwork { topology, protocol })
            .collect();
        Simulation::coexistence(
            &networks,
            Radio::cc2420(),
            FrameSizes::default(),
            channel,
            config,
        )
        .map_err(CoreError::Net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_matches_legacy_deployment() {
        let scenario = Scenario::paper_reference().deployment(0).unwrap();
        let legacy = Deployment::reference();
        assert_eq!(scenario.traffic, legacy.traffic, "flow tables must agree");
    }

    #[test]
    fn ring_scenarios_ignore_the_seed_analytically() {
        let s = Scenario::validation_ring();
        assert_eq!(
            s.deployment(1).unwrap().traffic,
            s.deployment(99).unwrap().traffic
        );
    }

    #[test]
    fn disk_deployment_tabulates_empirical_flows() {
        let env = Scenario::uniform_disk(60, 2.5, Seconds::new(80.0))
            .deployment(7)
            .unwrap();
        assert!(env.traffic.ring_model().is_none());
        assert_eq!(env.traffic.sources(), 59);
        assert!(env.traffic.depth() >= 2);
    }

    #[test]
    fn deployment_from_matches_seeded_realization() {
        let scenario = Scenario::hotspot_disk(50, 2.2, Seconds::new(80.0));
        let topology = scenario.topology.realize(11).unwrap();
        assert_eq!(
            scenario.deployment_from(&topology).unwrap().traffic,
            scenario.deployment(11).unwrap().traffic,
        );
        // Ring scenarios stay on the closed form whatever topology is
        // handed in.
        let ring = Scenario::validation_ring();
        let decoy = Scenario::uniform_disk(30, 1.8, Seconds::new(80.0))
            .topology
            .realize(3)
            .unwrap();
        assert_eq!(
            ring.deployment_from(&decoy).unwrap().traffic,
            ring.deployment(0).unwrap().traffic,
        );
    }

    #[test]
    fn hotspot_raises_the_bottleneck() {
        let period = Seconds::new(80.0);
        let flat = Scenario::uniform_disk(60, 2.5, period)
            .deployment(7)
            .unwrap();
        let hot = Scenario::hotspot_disk(60, 2.5, period)
            .deployment(7)
            .unwrap();
        assert!(
            hot.traffic.f_out(1).unwrap() >= flat.traffic.f_out(1).unwrap(),
            "a hotspot cannot lower the worst depth-1 load"
        );
        let hot_total: f64 = (1..=hot.traffic.depth())
            .map(|d| hot.traffic.f_out(d).unwrap().value())
            .sum();
        let flat_total: f64 = (1..=flat.traffic.depth())
            .map(|d| flat.traffic.f_out(d).unwrap().value())
            .sum();
        assert!(hot_total > flat_total, "hotspot adds traffic somewhere");
    }

    #[test]
    fn burst_deployment_uses_the_time_averaged_rate() {
        let period = Seconds::new(100.0);
        let env = Scenario::event_burst_disk(60, 2.0, period)
            .deployment(7)
            .unwrap();
        // duty 30/300 = 0.1, factor 4 => mean rate 1.3x the baseline.
        let leaf_like = env.traffic.f_out(env.traffic.depth()).unwrap().value();
        assert!(leaf_like >= 1.3 / period.value() - 1e-12);
        // ... and the window-conditional structure rides along for the
        // latency side.
        let regime = env.traffic.burst().expect("burst scenarios carry a regime");
        assert!((regime.duty() - 0.1).abs() < 1e-12);
        assert_eq!(regime.factor(), 4.0);
    }

    #[test]
    fn workload_extras_follow_the_scenario_family() {
        // Ring + uniform: closed forms, no regime, no realized slot
        // demand (the calibrated LMAC default frame stays in force).
        let ring = Scenario::paper_reference().deployment(0).unwrap();
        assert!(ring.traffic.burst().is_none());
        assert!(ring.traffic.slot_demand().is_none());
        // Realized disks know their distance-2 chromatic need.
        let disk = Scenario::uniform_disk(60, 2.5, Seconds::new(80.0))
            .deployment(7)
            .unwrap();
        let need = disk.traffic.slot_demand().expect("realized topology");
        assert!(need >= 3, "a multi-hop disk needs several slots: {need}");
        // Hotspots skew rates but have no synchronized windows.
        let hot = Scenario::hotspot_disk(60, 2.5, Seconds::new(80.0))
            .deployment(7)
            .unwrap();
        assert!(hot.traffic.burst().is_none());
        assert!(hot.traffic.slot_demand().is_some());
    }

    #[test]
    fn coexistence_preset_realizes_translated_networks() {
        let scenario = CoexistenceScenario::preset(3, 5.0);
        let topologies = scenario.realize(42).unwrap();
        assert_eq!(topologies.len(), 3);
        for (k, topo) in topologies.iter().enumerate() {
            assert_eq!(topo.len(), 13, "two-ring deployment: 1 + 3*(1+3) nodes");
            let sink = topo.position(topo.sink());
            assert!((sink.x - k as f64 * 5.0).abs() < 1e-12);
            assert_eq!(sink.y, 0.0);
            topo.graph().check_connected(topo.sink()).unwrap();
        }
        // Per-network seeds are decorrelated: the ring rotations (and
        // hence non-sink positions, after undoing the translation)
        // differ between networks.
        let p1 = topologies[1].position(edmac_net::NodeId::new(1));
        let p2 = topologies[2].position(edmac_net::NodeId::new(1));
        assert!((p1.x - 5.0 - (p2.x - 10.0)).abs() > 1e-9 || (p1.y - p2.y).abs() > 1e-9);
    }

    #[test]
    fn coexistence_preset_rejects_bad_parameters() {
        assert!(CoexistenceScenario::preset(0, 5.0).realize(0).is_err());
        let mut bad = CoexistenceScenario::preset(2, 5.0);
        bad.separation = f64::NAN;
        assert!(bad.realize(0).is_err());
    }

    #[test]
    fn coexistence_simulation_runs_one_report_per_network() {
        use edmac_sim::{WakeMode, XmacSim};
        let scenario = CoexistenceScenario::preset(2, 4.0);
        let xmac = XmacSim::new(Seconds::from_millis(100.0));
        let cfg = SimConfig {
            duration: Seconds::new(40.0),
            sample_period: Seconds::new(10.0),
            warmup: Seconds::new(5.0),
            seed: 3,
            scheduling: WakeMode::Dense,
        };
        let protocols: [&dyn SimProtocol; 2] = [&xmac, &xmac];
        assert!(
            scenario
                .simulation(&protocols[..1], &edmac_phy::UnitDisk, cfg)
                .is_err(),
            "panel must cover every network"
        );
        let reports = scenario
            .simulation(&protocols, &edmac_phy::UnitDisk, cfg)
            .unwrap()
            .run_coexistence();
        assert_eq!(reports.len(), 2);
        for (k, report) in reports.iter().enumerate() {
            let (lo, hi) = (k * 13, (k + 1) * 13);
            assert!(report
                .per_node()
                .iter()
                .all(|s| (lo..hi).contains(&s.node.index())));
            assert!(
                report.delivery_ratio() > 0.7,
                "network {k}: {}",
                report.delivery_ratio()
            );
        }
    }

    #[test]
    fn hotspot_selection_is_deterministic_and_sized() {
        let topo = TopologySpec::UniformDisk {
            nodes: 40,
            field_radius: 2.0,
        }
        .realize(5)
        .unwrap();
        let a = hotspot_nodes(&topo, 0.25);
        let b = hotspot_nodes(&topo, 0.25);
        assert_eq!(a, b);
        assert_eq!(a.len(), 9, "floor(39 * 0.25)");
        assert!(!a.contains(&topo.sink().index()));
    }
}
