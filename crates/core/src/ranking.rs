//! Ranking protocols under one application contract — the
//! system-designer workflow the paper's introduction motivates
//! (choosing MAC parameters by optimization instead of "repeated real
//! experiences").

use crate::analysis::TradeoffAnalysis;
use crate::error::CoreError;
use crate::report::TradeoffReport;
use crate::requirements::AppRequirements;
use edmac_mac::{Deployment, MacModel};
use edmac_units::{Joules, Seconds, Watts};

/// What to optimize for when ranking protocols that all meet the
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankingPolicy {
    /// Prefer the agreement with the lowest energy (longest lifetime).
    #[default]
    MinEnergy,
    /// Prefer the agreement with the lowest end-to-end delay.
    MinLatency,
    /// Prefer the largest Nash product of gains — "most balanced win".
    MaxNashProduct,
}

/// One protocol's outcome within a ranking.
#[derive(Debug, Clone)]
pub struct RankedOutcome {
    /// Protocol name.
    pub protocol: &'static str,
    /// The bargaining result, if the protocol can serve the contract.
    pub report: Result<TradeoffReport, CoreError>,
}

impl RankedOutcome {
    /// The score under `policy`; infeasible protocols score `+inf`
    /// (sort last).
    fn score(&self, policy: RankingPolicy) -> f64 {
        match &self.report {
            Err(_) => f64::INFINITY,
            Ok(r) => match policy {
                RankingPolicy::MinEnergy => r.e_star(),
                RankingPolicy::MinLatency => r.l_star(),
                RankingPolicy::MaxNashProduct => {
                    let gains = (r.e_worst() - r.e_star()) * (r.l_worst() - r.l_star());
                    -gains
                }
            },
        }
    }
}

/// Solves the bargaining game for every model and ranks the outcomes
/// under `policy`; infeasible protocols sort last (with their errors
/// preserved).
///
/// # Examples
///
/// ```
/// use edmac_core::{rank_protocols, AppRequirements, RankingPolicy};
/// use edmac_mac::{all_models, Deployment};
/// use edmac_units::{Joules, Seconds};
///
/// let reqs = AppRequirements::new(Joules::new(0.06), Seconds::new(4.0)).unwrap();
/// let ranking = rank_protocols(
///     &all_models(),
///     &Deployment::reference(),
///     reqs,
///     RankingPolicy::MinEnergy,
/// );
/// assert_eq!(ranking.len(), 3);
/// // The winner meets the contract.
/// let best = ranking[0].report.as_ref().unwrap();
/// assert!(best.e_star() <= 0.06);
/// ```
pub fn rank_protocols(
    models: &[Box<dyn MacModel>],
    env: &Deployment,
    reqs: AppRequirements,
    policy: RankingPolicy,
) -> Vec<RankedOutcome> {
    let mut outcomes: Vec<RankedOutcome> = models
        .iter()
        .map(|m| RankedOutcome {
            protocol: m.name(),
            report: TradeoffAnalysis::new(m.as_ref(), env, reqs).bargain(),
        })
        .collect();
    outcomes.sort_by(|a, b| {
        a.score(policy)
            .partial_cmp(&b.score(policy))
            .expect("scores are never NaN")
    });
    outcomes
}

/// Expected node lifetime when spending `energy_per_epoch` every
/// `epoch` from a battery of the given capacity.
///
/// This is why the paper defines `E = max_n En`: the *bottleneck* node's
/// consumption is what bounds the network's lifetime.
///
/// # Examples
///
/// ```
/// use edmac_core::lifetime;
/// use edmac_units::{Joules, Seconds};
///
/// // 18 kJ battery, 10 mJ per 10 s epoch -> 1 mW -> ~208 days.
/// let t = lifetime(Joules::new(18_000.0), Joules::from_milli(10.0), Seconds::new(10.0));
/// let days = t.value() / 86_400.0;
/// assert!((days - 208.3).abs() < 0.1);
/// ```
pub fn lifetime(battery: Joules, energy_per_epoch: Joules, epoch: Seconds) -> Seconds {
    let draw: Watts = energy_per_epoch / epoch;
    battery / draw
}

#[cfg(test)]
mod tests {
    use super::*;
    use edmac_mac::all_models;

    fn reqs(budget: f64, lmax: f64) -> AppRequirements {
        AppRequirements::new(Joules::new(budget), Seconds::new(lmax)).unwrap()
    }

    #[test]
    fn ranking_orders_by_policy() {
        let env = Deployment::reference();
        let models = all_models();
        let by_energy = rank_protocols(&models, &env, reqs(0.06, 4.0), RankingPolicy::MinEnergy);
        for pair in by_energy.windows(2) {
            let (a, b) = (&pair[0].report, &pair[1].report);
            if let (Ok(a), Ok(b)) = (a, b) {
                assert!(a.e_star() <= b.e_star());
            }
        }
        let by_latency = rank_protocols(&models, &env, reqs(0.06, 4.0), RankingPolicy::MinLatency);
        for pair in by_latency.windows(2) {
            if let (Ok(a), Ok(b)) = (&pair[0].report, &pair[1].report) {
                assert!(a.l_star() <= b.l_star());
            }
        }
    }

    #[test]
    fn infeasible_protocols_sort_last() {
        // A 1 s bound with a starved budget knocks LMAC out.
        let env = Deployment::reference();
        let models = all_models();
        let ranking = rank_protocols(&models, &env, reqs(0.03, 1.0), RankingPolicy::MinEnergy);
        let last = ranking.last().unwrap();
        assert!(
            last.report.is_err(),
            "{} should be infeasible",
            last.protocol
        );
        assert!(ranking[0].report.is_ok());
    }

    #[test]
    fn nash_product_policy_prefers_balanced_wins() {
        let env = Deployment::reference();
        let models = all_models();
        let ranking = rank_protocols(
            &models,
            &env,
            reqs(0.06, 6.0),
            RankingPolicy::MaxNashProduct,
        );
        // All three are feasible at the reference contract; the winner's
        // gain product dominates.
        let products: Vec<f64> = ranking
            .iter()
            .filter_map(|o| o.report.as_ref().ok())
            .map(|r| (r.e_worst() - r.e_star()) * (r.l_worst() - r.l_star()))
            .collect();
        assert_eq!(products.len(), 3);
        for pair in products.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-12);
        }
    }

    #[test]
    fn lifetime_arithmetic() {
        let t = lifetime(Joules::new(1_000.0), Joules::new(1.0), Seconds::new(1.0));
        assert!((t.value() - 1_000.0).abs() < 1e-9);
        // Halving consumption doubles lifetime.
        let t2 = lifetime(Joules::new(1_000.0), Joules::new(0.5), Seconds::new(1.0));
        assert!((t2.value() - 2_000.0).abs() < 1e-9);
    }
}
