//! The in-memory hot tier: a capacity-bounded LRU over content
//! digests, holding the verbatim cache-entry text (`Arc<str>` payloads,
//! so a hit hands out a reference instead of copying kilobytes under
//! the lock). Recency is a generation counter stamped on every touch;
//! eviction drops the smallest stamp. Entries are immutable — a digest
//! names exact content — so there is no invalidation path, only
//! capacity pressure.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The hot tier. `cap == 0` disables it (every lookup misses, every
/// insert is dropped).
#[derive(Debug)]
pub struct HotTier {
    inner: Mutex<HotInner>,
    cap: usize,
}

#[derive(Debug, Default)]
struct HotInner {
    entries: HashMap<String, (Arc<str>, u64)>,
    clock: u64,
}

impl HotTier {
    /// An empty tier holding at most `cap` entries.
    pub fn new(cap: usize) -> HotTier {
        HotTier {
            inner: Mutex::new(HotInner::default()),
            cap,
        }
    }

    /// Capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("hot lock").entries.len()
    }

    /// Whether the tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `digest`, refreshing its recency on a hit.
    pub fn get(&self, digest: &str) -> Option<Arc<str>> {
        let mut inner = self.inner.lock().expect("hot lock");
        inner.clock += 1;
        let clock = inner.clock;
        let (payload, stamp) = inner.entries.get_mut(digest)?;
        *stamp = clock;
        Some(Arc::clone(payload))
    }

    /// Inserts (or refreshes) `digest`, evicting the least recently
    /// touched entry when over capacity.
    pub fn insert(&self, digest: &str, payload: Arc<str>) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("hot lock");
        inner.clock += 1;
        let clock = inner.clock;
        inner.entries.insert(digest.to_string(), (payload, clock));
        while inner.entries.len() > self.cap {
            // O(n) victim scan: hot caps are small (hundreds), and the
            // scan runs only on insert-over-capacity.
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(digest, _)| digest.clone())
                .expect("over-capacity map is non-empty");
            inner.entries.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(tag: &str) -> Arc<str> {
        Arc::from(format!("entry {tag}"))
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let hot = HotTier::new(2);
        hot.insert("a", payload("a"));
        hot.insert("b", payload("b"));
        assert!(hot.get("a").is_some()); // refresh a: b is now coldest
        hot.insert("c", payload("c"));
        assert_eq!(hot.len(), 2);
        assert!(hot.get("b").is_none(), "b was the LRU victim");
        assert!(hot.get("a").is_some());
        assert_eq!(hot.get("c").as_deref(), Some("entry c"));
    }

    #[test]
    fn zero_capacity_disables_the_tier() {
        let hot = HotTier::new(0);
        hot.insert("a", payload("a"));
        assert!(hot.is_empty());
        assert!(hot.get("a").is_none());
    }
}
