//! Request observability: per-tier hit counters, log2-bucketed
//! latency histograms (p50/p95/exact-max in microseconds), and the
//! [`StatsReport`] schema shared between the live `stats` verb and the
//! offline `study cache-stats --json` audit — one schema, two sources,
//! so dashboards and CI greps read both identically.

use crate::request::Tier;
use edmac_study::json::Json;
use edmac_study::CacheReport;
use std::sync::Mutex;

/// Schema tag of one stats report (wire and CLI alike).
pub const STATS_SCHEMA: &str = "edmac-serve/stats/v1";

/// A log2-bucketed latency histogram over microseconds. Quantiles are
/// read from bucket upper bounds (≤ 2× overestimate by construction),
/// the maximum is exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))` µs (bucket 0
    /// holds 0–1 µs).
    buckets: [u64; 32],
    count: u64,
    max_us: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, us: u64) {
        let idx = (64 - us.leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum sample (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The `q`-quantile (0 < q ≤ 1) as the matching bucket's upper
    /// bound, clamped by the exact max; 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let bound = if idx >= 63 { u64::MAX } else { 1u64 << idx };
                return bound.min(self.max_us);
            }
        }
        self.max_us
    }
}

/// One tier's share of the report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Requests this tier answered.
    pub hits: u64,
    /// Service-time distribution of those requests.
    pub latency: Histogram,
}

/// Counters behind one running server; interior-mutable so every
/// worker thread records through a shared reference.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<MetricsInner>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    hot: TierStats,
    disk: TierStats,
    solve: TierStats,
    /// Solves actually performed (solve-tier leaders; coalesced
    /// followers share the leader's solve and do not count).
    cold_solves: u64,
    timeouts: u64,
    overloaded: u64,
    errors: u64,
    coalesced: u64,
}

impl Metrics {
    /// Records one answered solve request.
    pub fn record(&self, tier: Tier, elapsed_us: u64, coalesced: bool) {
        let mut inner = self.inner.lock().expect("metrics lock");
        let stats = match tier {
            Tier::Hot => &mut inner.hot,
            Tier::Disk => &mut inner.disk,
            Tier::Solve => &mut inner.solve,
        };
        stats.hits += 1;
        stats.latency.record(elapsed_us);
        if coalesced {
            inner.coalesced += 1;
        } else if tier == Tier::Solve {
            inner.cold_solves += 1;
        }
    }

    /// Records a deadline expiry.
    pub fn record_timeout(&self) {
        self.inner.lock().expect("metrics lock").timeouts += 1;
    }

    /// Records a shed request.
    pub fn record_overloaded(&self) {
        self.inner.lock().expect("metrics lock").overloaded += 1;
    }

    /// Records a request-level error.
    pub fn record_error(&self) {
        self.inner.lock().expect("metrics lock").errors += 1;
    }

    /// Snapshots the live report. `entries` is the current on-disk
    /// entry count (the server reads it at stats time).
    pub fn report(&self, entries: usize) -> StatsReport {
        let inner = self.inner.lock().expect("metrics lock");
        let items = inner.hot.hits + inner.disk.hits + inner.solve.hits;
        StatsReport {
            source: "serve",
            items: items as usize,
            // A miss is a solve actually performed; everything else —
            // hot, disk, or a coalesced ride on someone's solve — was
            // answered without one.
            hits: (items - inner.cold_solves) as usize,
            misses: inner.cold_solves as usize,
            invalidated: 0,
            entries,
            timeouts: inner.timeouts,
            overloaded: inner.overloaded,
            errors: inner.errors,
            coalesced: inner.coalesced,
            hot: inner.hot.clone(),
            disk: inner.disk.clone(),
            solve: inner.solve.clone(),
        }
    }
}

/// The shared stats schema: tier hit rates plus latency quantiles,
/// produced live by the `stats` verb (`source: "serve"`) and offline
/// by `study cache-stats --json` (`source: "audit"`, latencies zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReport {
    /// `"serve"` (live counters) or `"audit"` (offline key audit).
    pub source: &'static str,
    /// Solve requests answered / work items audited.
    pub items: usize,
    /// Cache hits (hot + disk tiers / probe hits).
    pub hits: usize,
    /// Cold solves performed / items that would solve.
    pub misses: usize,
    /// On-disk entries no audited key addresses (audit only).
    pub invalidated: usize,
    /// Entry files on disk.
    pub entries: usize,
    /// Requests whose deadline expired.
    pub timeouts: u64,
    /// Requests shed under load.
    pub overloaded: u64,
    /// Malformed or failed requests.
    pub errors: u64,
    /// Requests that piggybacked on another's in-flight solve.
    pub coalesced: u64,
    /// Hot-tier stats.
    pub hot: TierStats,
    /// Disk-tier stats.
    pub disk: TierStats,
    /// Solve-tier stats.
    pub solve: TierStats,
}

impl StatsReport {
    /// Maps an offline [`CacheReport`] audit into the shared schema:
    /// probe hits become disk-tier hits, would-be solves solve-tier
    /// hits; every latency is zero because nothing was served.
    pub fn from_audit(report: &CacheReport) -> StatsReport {
        StatsReport {
            source: "audit",
            items: report.items,
            hits: report.hits,
            misses: report.misses,
            invalidated: report.invalidated,
            entries: report.entries,
            timeouts: 0,
            overloaded: 0,
            errors: 0,
            coalesced: 0,
            hot: TierStats::default(),
            disk: TierStats {
                hits: report.hits as u64,
                latency: Histogram::default(),
            },
            solve: TierStats {
                hits: report.misses as u64,
                latency: Histogram::default(),
            },
        }
    }

    fn tier_json(stats: &TierStats) -> Json {
        Json::Obj(vec![
            ("hits".into(), Json::from_u64(stats.hits)),
            (
                "p50_us".into(),
                Json::from_u64(stats.latency.quantile_us(0.5)),
            ),
            (
                "p95_us".into(),
                Json::from_u64(stats.latency.quantile_us(0.95)),
            ),
            ("max_us".into(), Json::from_u64(stats.latency.max_us())),
        ])
    }

    /// The report as a JSON value (the `stats` verb's payload and the
    /// `--json` flag's document).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::from_str_(STATS_SCHEMA)),
            ("source".into(), Json::from_str_(self.source)),
            ("items".into(), Json::from_usize(self.items)),
            ("hits".into(), Json::from_usize(self.hits)),
            ("misses".into(), Json::from_usize(self.misses)),
            ("invalidated".into(), Json::from_usize(self.invalidated)),
            ("entries".into(), Json::from_usize(self.entries)),
            ("timeouts".into(), Json::from_u64(self.timeouts)),
            ("overloaded".into(), Json::from_u64(self.overloaded)),
            ("errors".into(), Json::from_u64(self.errors)),
            ("coalesced".into(), Json::from_u64(self.coalesced)),
            (
                "tiers".into(),
                Json::Obj(vec![
                    ("hot".into(), StatsReport::tier_json(&self.hot)),
                    ("disk".into(), StatsReport::tier_json(&self.disk)),
                    ("solve".into(), StatsReport::tier_json(&self.solve)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let mut h = Histogram::default();
        for us in [3, 5, 7, 9, 40, 70, 900] {
            h.record(us);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_us(), 900);
        let p50 = h.quantile_us(0.5);
        // Rank-4 sample is 9 → bucket [8,16) → upper bound 16.
        assert!((9..=16).contains(&p50), "p50 {p50}");
        assert_eq!(h.quantile_us(1.0), 900, "p100 clamps to the exact max");
        assert_eq!(Histogram::default().quantile_us(0.5), 0);
    }

    #[test]
    fn live_and_audit_reports_share_one_schema() {
        let metrics = Metrics::default();
        metrics.record(Tier::Hot, 12, false);
        metrics.record(Tier::Disk, 250, false);
        metrics.record(Tier::Solve, 800, false);
        metrics.record(Tier::Solve, 650, true);
        metrics.record_timeout();
        metrics.record_error();
        let live = metrics.report(2).to_json();
        let audit = StatsReport::from_audit(&CacheReport {
            items: 12,
            hits: 9,
            misses: 3,
            invalidated: 1,
            entries: 10,
        })
        .to_json();
        for doc in [&live, &audit] {
            assert_eq!(doc.str_("schema").unwrap(), STATS_SCHEMA);
            for field in ["items", "hits", "misses", "invalidated", "entries"] {
                doc.usize_(field).unwrap_or_else(|e| panic!("{e}"));
            }
            let tiers = doc.get("tiers").unwrap();
            for tier in ["hot", "disk", "solve"] {
                let t = tiers.get(tier).unwrap();
                for field in ["hits", "p50_us", "p95_us", "max_us"] {
                    t.u64_(field).unwrap_or_else(|e| panic!("{e}"));
                }
            }
        }
        assert_eq!(live.str_("source").unwrap(), "serve");
        assert_eq!(audit.str_("source").unwrap(), "audit");
        assert_eq!(live.usize_("items").unwrap(), 4);
        // One actual solve: the coalesced solve-tier request rode on
        // the leader's and is a hit, not a miss.
        assert_eq!(live.usize_("hits").unwrap(), 3);
        assert_eq!(live.usize_("misses").unwrap(), 1);
        assert_eq!(live.u64_("coalesced").unwrap(), 1);
        assert_eq!(audit.usize_("hits").unwrap(), 9);
    }
}
