//! The line-delimited JSON wire protocol: one request object per line
//! in, one response object per line out, both rendered and parsed by
//! the shared mini-JSON module ([`edmac_study::json`]).
//!
//! A solve request is a *scenario spec*, not a grid coordinate: it
//! carries the preset family, its topology/traffic parameters, the
//! per-cell seed, the protocol, the solve requirements, and the
//! validation intent — exactly the inputs the study's content key
//! hashes. [`SolveRequest::to_cell`] reconstructs the corresponding
//! [`GridCell`] with the *same* arithmetic the grid enumerator uses
//! (same `disk_radius`, same `every × duty` burst duration), so a
//! request that describes a grid cell resolves to that cell's exact
//! cache key. Floats travel as shortest-round-trip `{:?}` tokens and
//! the seed as a decimal string, so every parameter survives the wire
//! bit for bit.

use edmac_core::{
    disk_radius, AppRequirements, GridCell, PresetKind, Scenario, TopologySpec, TrafficSpec,
};
use edmac_study::json::{jstr, Json};
use edmac_units::{Joules, Seconds};

/// Schema tag of one request/response line.
pub const WIRE_SCHEMA: &str = "edmac-serve/wire/v1";

/// A parsed request line: either a solve query or a stats probe.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Resolve one deployment through the hot/disk/solve tiers.
    Solve(SolveRequest),
    /// Return the server's [`crate::StatsReport`].
    Stats,
}

/// One deployment-planning query.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Preset family (selects which parameters below apply).
    pub preset: PresetKind,
    /// Ring depth `D` (ring preset; 0 otherwise).
    pub depth: usize,
    /// Ring density `C` (ring preset; 0 otherwise).
    pub density: usize,
    /// Node count (disk/hotspot/burst presets; rings derive theirs).
    pub nodes: usize,
    /// Hotspot rate multiplier (hotspot preset; 1 otherwise).
    pub hotspot_factor: f64,
    /// Hotspot spatial fraction (hotspot preset).
    pub hotspot_fraction: f64,
    /// Burst duty `duration / every` (burst preset; 0 otherwise).
    pub burst_duty: f64,
    /// Burst recurrence interval (burst preset).
    pub burst_every: Seconds,
    /// Burst rate multiplier (burst preset).
    pub burst_factor: f64,
    /// Baseline sampling period.
    pub sample_period: Seconds,
    /// Topology/simulation seed (decimal string on the wire: u64).
    pub seed: u64,
    /// Protocol registry name.
    pub protocol: String,
    /// Per-epoch energy budget (J).
    pub energy_budget: Joules,
    /// End-to-end latency bound (s).
    pub latency_bound: Seconds,
    /// Validation intent: `Some(horizon)` asks for packet-level
    /// validation, and is part of the content key.
    pub validate_horizon: Option<Seconds>,
    /// Per-request deadline in milliseconds (`None` = server default).
    pub deadline_ms: Option<u64>,
}

impl SolveRequest {
    /// A request describing grid cell `cell` (the client's replay
    /// path): [`SolveRequest::to_cell`] of the result reconstructs a
    /// cell with identical scenario, coordinates, and seed.
    pub fn for_cell(
        cell: &GridCell,
        grid: &edmac_core::StudyGrid,
        protocol: &str,
        requirements: AppRequirements,
        validate_horizon: Option<Seconds>,
    ) -> SolveRequest {
        let density = match cell.scenario.topology {
            TopologySpec::Ring { density, .. } => density,
            _ => 0,
        };
        SolveRequest {
            preset: cell.preset,
            depth: cell.depth,
            density,
            nodes: cell.nodes,
            hotspot_factor: cell.hotspot_factor,
            hotspot_fraction: grid.hotspot_fraction,
            burst_duty: cell.burst_duty,
            burst_every: grid.burst_every,
            burst_factor: grid.burst_factor,
            sample_period: grid.sample_period,
            seed: cell.seed,
            protocol: protocol.to_string(),
            energy_budget: requirements.energy_budget(),
            latency_bound: requirements.latency_bound(),
            validate_horizon,
            deadline_ms: None,
        }
    }

    /// Reconstructs the [`GridCell`] this request describes, using the
    /// grid enumerator's own construction arithmetic. The grid *index*
    /// is not wire content (the content key ignores it); it is pinned
    /// to 0.
    pub fn to_cell(&self) -> GridCell {
        let (scenario, nodes, depth, hotspot_factor, burst_duty) = match self.preset {
            PresetKind::Ring => {
                let (depth, density) = (self.depth, self.density);
                let nodes = 1 + density * depth * (depth + 1) / 2;
                let scenario = Scenario::ring(depth, density, self.sample_period);
                (scenario, nodes, depth, 1.0, 0.0)
            }
            PresetKind::UniformDisk => {
                let nodes = self.nodes;
                let scenario = Scenario {
                    name: format!("disk_n{nodes}"),
                    topology: TopologySpec::UniformDisk {
                        nodes,
                        field_radius: disk_radius(nodes),
                    },
                    traffic: TrafficSpec::Uniform {
                        sample_period: self.sample_period,
                    },
                };
                (scenario, nodes, 0, 1.0, 0.0)
            }
            PresetKind::HotspotDisk => {
                let (nodes, factor) = (self.nodes, self.hotspot_factor);
                let scenario = Scenario {
                    name: format!("hotspot_n{nodes}_f{factor}"),
                    topology: TopologySpec::UniformDisk {
                        nodes,
                        field_radius: disk_radius(nodes),
                    },
                    traffic: TrafficSpec::Hotspot {
                        sample_period: self.sample_period,
                        factor,
                        fraction: self.hotspot_fraction,
                    },
                };
                (scenario, nodes, 0, factor, 0.0)
            }
            PresetKind::BurstDisk => {
                let (nodes, duty) = (self.nodes, self.burst_duty);
                let scenario = Scenario {
                    name: format!("burst_n{nodes}_d{duty}"),
                    topology: TopologySpec::UniformDisk {
                        nodes,
                        field_radius: disk_radius(nodes),
                    },
                    traffic: TrafficSpec::EventBurst {
                        sample_period: self.sample_period,
                        factor: self.burst_factor,
                        every: self.burst_every,
                        duration: Seconds::new(self.burst_every.value() * duty),
                    },
                };
                (scenario, nodes, 0, 1.0, duty)
            }
        };
        GridCell {
            index: 0,
            scenario,
            preset: self.preset,
            nodes,
            depth,
            hotspot_factor,
            burst_duty,
            seed: self.seed,
        }
    }

    /// The request's requirement caps.
    ///
    /// # Errors
    ///
    /// Propagates the requirement validator's message (non-positive or
    /// non-finite caps).
    pub fn requirements(&self) -> Result<AppRequirements, String> {
        AppRequirements::new(self.energy_budget, self.latency_bound).map_err(|e| e.to_string())
    }
}

impl Request {
    /// Renders one wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Request::Stats => Json::Obj(vec![
                ("schema".into(), Json::from_str_(WIRE_SCHEMA)),
                ("verb".into(), Json::from_str_("stats")),
            ])
            .render(),
            Request::Solve(q) => {
                let mut fields = vec![
                    ("schema".into(), Json::from_str_(WIRE_SCHEMA)),
                    ("verb".into(), Json::from_str_("solve")),
                    ("preset".into(), Json::from_str_(q.preset.label())),
                    ("depth".into(), Json::from_usize(q.depth)),
                    ("density".into(), Json::from_usize(q.density)),
                    ("nodes".into(), Json::from_usize(q.nodes)),
                    ("hotspot_factor".into(), Json::from_f64(q.hotspot_factor)),
                    (
                        "hotspot_fraction".into(),
                        Json::from_f64(q.hotspot_fraction),
                    ),
                    ("burst_duty".into(), Json::from_f64(q.burst_duty)),
                    (
                        "burst_every_s".into(),
                        Json::from_f64(q.burst_every.value()),
                    ),
                    ("burst_factor".into(), Json::from_f64(q.burst_factor)),
                    (
                        "sample_period_s".into(),
                        Json::from_f64(q.sample_period.value()),
                    ),
                    // Decimal string: a u64 seed does not fit in a
                    // JSON double.
                    ("seed".into(), Json::Str(q.seed.to_string())),
                    ("protocol".into(), Json::from_str_(&q.protocol)),
                    (
                        "energy_budget_j".into(),
                        Json::from_f64(q.energy_budget.value()),
                    ),
                    (
                        "latency_bound_s".into(),
                        Json::from_f64(q.latency_bound.value()),
                    ),
                    (
                        "validate_h_s".into(),
                        match q.validate_horizon {
                            Some(h) => Json::from_f64(h.value()),
                            None => Json::Null,
                        },
                    ),
                ];
                if let Some(ms) = q.deadline_ms {
                    fields.push(("deadline_ms".into(), Json::from_u64(ms)));
                }
                Json::Obj(fields).render()
            }
        }
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, schema drift, an unknown
    /// verb, or a missing/mistyped field.
    pub fn parse(line: &str) -> Result<Request, String> {
        let root = Json::parse(line)?;
        let schema = root.str_("schema")?;
        if schema != WIRE_SCHEMA {
            return Err(format!("wire schema '{schema}' is not '{WIRE_SCHEMA}'"));
        }
        match root.str_("verb")? {
            "stats" => Ok(Request::Stats),
            "solve" => Ok(Request::Solve(SolveRequest {
                preset: {
                    let label = root.str_("preset")?;
                    PresetKind::parse(label).ok_or_else(|| format!("unknown preset '{label}'"))?
                },
                depth: root.usize_("depth")?,
                density: root.usize_("density")?,
                nodes: root.usize_("nodes")?,
                hotspot_factor: root.f64_("hotspot_factor")?,
                hotspot_fraction: root.f64_("hotspot_fraction")?,
                burst_duty: root.f64_("burst_duty")?,
                burst_every: Seconds::new(root.f64_("burst_every_s")?),
                burst_factor: root.f64_("burst_factor")?,
                sample_period: Seconds::new(root.f64_("sample_period_s")?),
                seed: root.u64_("seed")?,
                protocol: root.str_("protocol")?.to_string(),
                energy_budget: Joules::new(root.f64_("energy_budget_j")?),
                latency_bound: Seconds::new(root.f64_("latency_bound_s")?),
                validate_horizon: match root.get("validate_h_s")? {
                    Json::Null => None,
                    Json::Num(s) => Some(Seconds::new(
                        s.parse().map_err(|e| format!("validate_h_s: {e}"))?,
                    )),
                    other => Err(format!("validate_h_s is not a number or null: {other:?}"))?,
                },
                deadline_ms: match root.opt("deadline_ms") {
                    None => None,
                    Some(_) => Some(root.u64_("deadline_ms")?),
                },
            })),
            other => Err(format!("unknown verb '{other}'")),
        }
    }
}

/// Which tier answered a solve request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// In-memory LRU hit.
    Hot,
    /// Disk cache-entry hit.
    Disk,
    /// Cold NBS solve (write-through on success).
    Solve,
}

impl Tier {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            Tier::Hot => "hot",
            Tier::Disk => "disk",
            Tier::Solve => "solved",
        }
    }

    /// Parses a wire label (the inverse of [`Tier::label`]).
    pub fn parse(label: &str) -> Option<Tier> {
        match label {
            "hot" => Some(Tier::Hot),
            "disk" => Some(Tier::Disk),
            "solved" => Some(Tier::Solve),
            _ => None,
        }
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The solve resolved: which tier answered, the content digest,
    /// service time, and the *verbatim* cache-entry text — byte-equal
    /// to the `.entry` file the offline runner writes for this key.
    Outcome {
        /// Tier that answered.
        tier: Tier,
        /// 32-hex-digit content digest of the key.
        digest: String,
        /// Service time in microseconds.
        elapsed_us: u64,
        /// Verbatim serialized [`edmac_study::CellOutcome`].
        outcome: String,
    },
    /// The stats verb's report, as a rendered JSON object.
    Stats(Json),
    /// The deadline expired before the solve finished (the solve still
    /// completes server-side and populates the cache).
    Timeout {
        /// Content digest of the key that timed out.
        digest: String,
        /// Time spent before giving up, in microseconds.
        elapsed_us: u64,
    },
    /// The server shed the request instead of queueing it unboundedly.
    Overloaded,
    /// Malformed request or failed resolve.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Response {
    /// Renders one wire line (no trailing newline).
    pub fn render(&self) -> String {
        let fields = match self {
            Response::Outcome {
                tier,
                digest,
                elapsed_us,
                outcome,
            } => vec![
                ("status".into(), Json::from_str_("ok")),
                ("tier".into(), Json::from_str_(tier.label())),
                ("digest".into(), Json::from_str_(digest)),
                ("elapsed_us".into(), Json::from_u64(*elapsed_us)),
                ("outcome".into(), Json::Str(outcome.clone())),
            ],
            Response::Stats(report) => vec![
                ("status".into(), Json::from_str_("ok")),
                ("stats".into(), report.clone()),
            ],
            Response::Timeout { digest, elapsed_us } => vec![
                ("status".into(), Json::from_str_("timeout")),
                ("digest".into(), Json::from_str_(digest)),
                ("elapsed_us".into(), Json::from_u64(*elapsed_us)),
            ],
            Response::Overloaded => vec![("status".into(), Json::from_str_("overloaded"))],
            Response::Error { message } => vec![
                ("status".into(), Json::from_str_("error")),
                ("message".into(), Json::Str(message.clone())),
            ],
        };
        Json::Obj(fields).render()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or an unknown status/tier.
    pub fn parse(line: &str) -> Result<Response, String> {
        let root = Json::parse(line)?;
        match root.str_("status")? {
            "overloaded" => Ok(Response::Overloaded),
            "timeout" => Ok(Response::Timeout {
                digest: root.str_("digest")?.to_string(),
                elapsed_us: root.u64_("elapsed_us")?,
            }),
            "error" => Ok(Response::Error {
                message: root.str_("message")?.to_string(),
            }),
            "ok" => {
                if let Some(stats) = root.opt("stats") {
                    return Ok(Response::Stats(stats.clone()));
                }
                let tier_label = root.str_("tier")?;
                Ok(Response::Outcome {
                    tier: Tier::parse(tier_label)
                        .ok_or_else(|| format!("unknown tier '{tier_label}'"))?,
                    digest: root.str_("digest")?.to_string(),
                    elapsed_us: root.u64_("elapsed_us")?,
                    outcome: root.str_("outcome")?.to_string(),
                })
            }
            other => Err(format!("unknown status '{other}'")),
        }
    }

    /// One grep-able log line for this response (the server's
    /// structured per-request log).
    pub fn log_line(&self, peer: &str) -> String {
        match self {
            Response::Outcome {
                tier,
                digest,
                elapsed_us,
                ..
            } => format!(
                "serve: request peer={peer} status=ok tier={} digest={digest} elapsed_us={elapsed_us}",
                tier.label()
            ),
            Response::Stats(_) => format!("serve: request peer={peer} status=ok verb=stats"),
            Response::Timeout { digest, elapsed_us } => format!(
                "serve: request peer={peer} status=timeout digest={digest} elapsed_us={elapsed_us}"
            ),
            Response::Overloaded => format!("serve: request peer={peer} status=overloaded"),
            Response::Error { message } => format!(
                "serve: request peer={peer} status=error message={}",
                jstr(message)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edmac_proto::ProtocolRegistry;
    use edmac_study::{item_key, validation_intent, SchemaVersions, StudyConfig};

    fn sample_solve() -> SolveRequest {
        SolveRequest {
            preset: PresetKind::BurstDisk,
            depth: 0,
            density: 0,
            nodes: 40,
            hotspot_factor: 1.0,
            hotspot_fraction: 0.25,
            burst_duty: 0.1,
            burst_every: Seconds::new(300.0),
            burst_factor: 4.0,
            sample_period: Seconds::new(60.0),
            seed: u64::MAX - 11,
            protocol: "X-MAC".into(),
            energy_budget: Joules::new(0.5),
            latency_bound: Seconds::new(30.0),
            validate_horizon: Some(Seconds::new(600.0)),
            deadline_ms: Some(2500),
        }
    }

    #[test]
    fn requests_round_trip() {
        for request in [Request::Solve(sample_solve()), Request::Stats] {
            let line = request.render();
            assert_eq!(Request::parse(&line).expect("round trip"), request);
        }
        // Optional fields: no deadline, no validation.
        let mut q = sample_solve();
        q.deadline_ms = None;
        q.validate_horizon = None;
        let request = Request::Solve(q);
        assert_eq!(Request::parse(&request.render()).unwrap(), request);
    }

    #[test]
    fn responses_round_trip() {
        let outcome = Response::Outcome {
            tier: Tier::Disk,
            digest: "ab".repeat(16),
            elapsed_us: 812,
            outcome: "edmac-study/cache-entry/v1\nkey x\nprotocol X-MAC\n".into(),
        };
        let timeout = Response::Timeout {
            digest: "0".repeat(32),
            elapsed_us: 1_000_000,
        };
        let error = Response::Error {
            message: "unknown preset 'mesh'".into(),
        };
        for response in [outcome, timeout, Response::Overloaded, error] {
            let line = response.render();
            assert_eq!(Response::parse(&line).expect("round trip"), response);
        }
    }

    #[test]
    fn schema_and_verb_drift_are_rejected() {
        let line = Request::Stats.render().replace("wire/v1", "wire/v0");
        assert!(Request::parse(&line).unwrap_err().contains("schema"));
        let line = Request::Stats.render().replace("stats", "destroy");
        assert!(Request::parse(&line).unwrap_err().contains("verb"));
        assert!(Request::parse("not json").is_err());
    }

    /// The load-bearing equivalence: a request built from any grid
    /// cell reconstructs a cell with the *same content key* — for the
    /// full 72-cell grid across the whole protocol panel, including
    /// the validation-intent stride.
    #[test]
    fn grid_cells_round_trip_through_requests_key_exactly() {
        let registry = ProtocolRegistry::builtin();
        let schema = SchemaVersions::current();
        for config in [StudyConfig::smoke(), StudyConfig::full()] {
            let suites = registry.select(&config.protocols).unwrap();
            for cell in config.grid.cells() {
                for (suite_idx, suite) in suites.iter().enumerate() {
                    let grid_work = cell.index * suites.len() + suite_idx;
                    let validation = validation_intent(&config, grid_work);
                    let expected = item_key(
                        &schema,
                        &cell,
                        suite.as_ref(),
                        config.requirements,
                        validation,
                    );
                    let request = SolveRequest::for_cell(
                        &cell,
                        &config.grid,
                        suite.name(),
                        config.requirements,
                        validation,
                    );
                    // Through the wire and back: parse(render) first.
                    let line = Request::Solve(request).render();
                    let Request::Solve(parsed) = Request::parse(&line).unwrap() else {
                        panic!("solve request parsed as stats");
                    };
                    let rebuilt = parsed.to_cell();
                    assert_eq!(rebuilt.scenario, cell.scenario, "{}", cell.scenario.name);
                    let key = item_key(
                        &schema,
                        &rebuilt,
                        suite.as_ref(),
                        parsed.requirements().unwrap(),
                        parsed.validate_horizon,
                    );
                    assert_eq!(
                        key.canonical(),
                        expected.canonical(),
                        "{} × {}",
                        cell.scenario.name,
                        suite.name()
                    );
                }
            }
        }
    }
}
