//! `edmac-serve`: the deployment-planning service over the study's
//! content-addressed solver — "solve this deployment" as a network
//! query instead of a batch run.
//!
//! The ROADMAP asked the study pipeline to scale like a service, not a
//! script: a planning backend that answers the paper's per-deployment
//! NBS solve (energy-delay bargaining over duty-cycled MAC parameters)
//! continuously, the regime Khodaian et al.'s delay-constrained
//! utility-energy trade-off describes. This crate is that backend, as
//! a std-only TCP server (`std::net` + thread pool, no async runtime)
//! speaking line-delimited JSON:
//!
//! * **Three tiers.** A request's scenario spec is canonicalized to
//!   the PR 7 content key; its digest resolves through an in-memory
//!   LRU hot tier ([`HotTier`]), the on-disk [`edmac_study::CellCache`]
//!   (write-through), and finally a cold NBS solve via the
//!   [`edmac_proto::ProtocolRegistry`].
//! * **Single-flight.** Concurrent identical queries elect one leader
//!   per digest ([`FlightMap`]); everyone else waits for its published
//!   result — N requests, exactly one solve.
//! * **Byte-identity on the wire.** A response's `outcome` payload is
//!   the verbatim cache-entry text — byte-equal to what the offline
//!   runner serializes for the same key — so the repo's determinism
//!   gate (CI diffing artifacts bit for bit) extends to the service.
//! * **Robustness and observability.** Per-request deadlines with
//!   honest `timeout` responses, a bounded accept queue that answers
//!   `overloaded` instead of hanging, SIGTERM/ctrl-c drain
//!   ([`install_drain_flag`]), one structured log line per request,
//!   and a `stats` verb reporting per-tier hit rates and latency
//!   quantiles in the same schema `study cache-stats --json` emits.
//!
//! The `study serve` / `study query` subcommands (in `edmac-bench`)
//! are the CLI faces of [`Server`] and [`Client`].

#![deny(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs, missing_debug_implementations)]

mod client;
mod flight;
mod hot;
mod metrics;
mod request;
mod server;
mod signal;

pub use client::Client;
pub use flight::{FlightMap, FlightResult, FollowHandle, Joined};
pub use hot::HotTier;
pub use metrics::{Histogram, Metrics, StatsReport, TierStats, STATS_SCHEMA};
pub use request::{Request, Response, SolveRequest, Tier, WIRE_SCHEMA};
pub use server::{ServeConfig, Server};
pub use signal::install_drain_flag;
