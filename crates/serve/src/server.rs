//! The service core: a nonblocking accept loop feeding a bounded
//! connection queue drained by a `std::thread` worker pool — no async
//! runtime, just `std::net` plus condvars. Every solve request
//! resolves hot tier → disk cache → cold solve under single-flight
//! dedup, with write-through on a miss, per-request deadlines, and
//! explicit load-shedding: a full queue answers `overloaded`
//! immediately rather than queueing unboundedly, and a stop flag (set
//! programmatically or by SIGTERM/ctrl-c) drains queued connections
//! before the pool exits.

use crate::flight::{FlightMap, Joined};
use crate::hot::HotTier;
use crate::metrics::Metrics;
use crate::request::{Request, Response, SolveRequest, Tier};
use edmac_proto::ProtocolRegistry;
use edmac_study::{item_key, render_entry, solve_cell, validate_cell, CellCache, SchemaVersions};
use std::collections::VecDeque;
use std::io::{self, BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One server's knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 = ephemeral).
    pub addr: String,
    /// Content-addressed cache directory (the disk tier; also where
    /// cold solves are written through).
    pub cache_dir: PathBuf,
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Hot-tier capacity in entries (0 disables the tier).
    pub hot_cap: usize,
    /// Connection-queue bound; a connection arriving beyond it is
    /// answered `overloaded` and closed by the acceptor.
    pub queue_cap: usize,
    /// Deadline applied to requests that do not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Emit one structured log line per request to stderr.
    pub log: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_dir: PathBuf::from("study-cache"),
            workers: 0,
            hot_cap: 256,
            queue_cap: 64,
            default_deadline_ms: 30_000,
            log: false,
        }
    }
}

/// How often blocked loops re-check the stop flag. Short enough that a
/// drain completes promptly, long enough to stay off the profiler.
const POLL: Duration = Duration::from_millis(25);

struct Shared {
    cache: CellCache,
    registry: ProtocolRegistry,
    hot: HotTier,
    /// Canonical-request-line → content digest memo: deriving the key
    /// realizes the cell's deployment (~100–250 µs on 40-node cells),
    /// which would dominate a hot hit; a repeat request skips straight
    /// to the hot tier. Value coincidence is harmless — same request
    /// text always means the same digest.
    keys: HotTier,
    flights: FlightMap,
    metrics: Metrics,
    stop: Arc<AtomicBool>,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    queue_cap: usize,
    default_deadline_ms: u64,
    log: bool,
}

/// A running server: acceptor thread + worker pool over one listener.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving. `stop` is the drain flag: flip it (or
    /// call [`Server::shutdown`], which flips it for you) and the
    /// acceptor stops admitting, the workers drain the queue, and
    /// every thread exits.
    ///
    /// # Errors
    ///
    /// Propagates bind and cache-directory failures.
    pub fn start(config: &ServeConfig, stop: Arc<AtomicBool>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: CellCache::open(&config.cache_dir)?,
            registry: ProtocolRegistry::builtin(),
            hot: HotTier::new(config.hot_cap),
            keys: HotTier::new(config.hot_cap),
            flights: FlightMap::new(),
            metrics: Metrics::default(),
            stop: Arc::clone(&stop),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            queue_cap: config.queue_cap.max(1),
            default_deadline_ms: config.default_deadline_ms,
            log: config.log,
        });
        let worker_count = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server {
            local_addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Sets the drain flag and joins every thread: no new connections,
    /// queued ones served, then a clean exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Whether the drain flag is set (e.g. by a signal handler).
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Without nodelay, Nagle + delayed ACK adds ~40 ms to
                // every one-line response — 400× the hot-hit budget.
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(POLL));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                let mut queue = shared.queue.lock().expect("queue lock");
                if queue.len() >= shared.queue_cap {
                    // Load-shedding: answer inline from the acceptor —
                    // an explicit status, never an unbounded queue or
                    // a hang.
                    drop(queue);
                    shared.metrics.record_overloaded();
                    let response = Response::Overloaded;
                    if shared.log {
                        eprintln!("{}", response.log_line("acceptor"));
                    }
                    let mut stream = stream;
                    let _ = writeln!(stream, "{}", response.render());
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // Wake every parked worker so the drain finishes promptly.
    shared.available.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                // Queue is empty: exit once draining, else park.
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .available
                    .wait_timeout(queue, POLL)
                    .expect("queue lock")
                    .0;
            }
        };
        match conn {
            Some(conn) => serve_connection(shared, conn),
            None => return,
        }
    }
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF: client closed
            Ok(_) => {
                let trimmed = line.trim_end_matches(['\n', '\r']);
                if trimmed.is_empty() {
                    continue;
                }
                let response = handle_line(shared, trimmed);
                if shared.log {
                    eprintln!("{}", response.log_line(&peer));
                }
                if writeln!(writer, "{}", response.render())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle connection: the read timeout is the stop-flag
                // poll, so a drain never waits on a silent client.
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
        if shared.stop.load(Ordering::SeqCst) {
            // Finish the in-flight request (done above), then close.
            return;
        }
    }
}

fn handle_line(shared: &Shared, line: &str) -> Response {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => {
            shared.metrics.record_error();
            return Response::Error { message };
        }
    };
    match request {
        Request::Stats => {
            let entries = shared.cache.entry_digests().map(|d| d.len()).unwrap_or(0);
            Response::Stats(shared.metrics.report(entries).to_json())
        }
        Request::Solve(query) => handle_solve(shared, &query),
    }
}

fn handle_solve(shared: &Shared, query: &SolveRequest) -> Response {
    let t0 = Instant::now();
    let deadline_ms = query.deadline_ms.unwrap_or(shared.default_deadline_ms);
    let deadline = t0 + Duration::from_millis(deadline_ms);
    let error = |message: String| {
        shared.metrics.record_error();
        Response::Error { message }
    };
    let suite = match shared.registry.suite(&query.protocol) {
        Ok(suite) => suite,
        Err(e) => return error(e.to_string()),
    };
    let requirements = match query.requirements() {
        Ok(requirements) => requirements,
        Err(e) => return error(format!("requirements: {e}")),
    };
    let elapsed_us = |t0: Instant| u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
    let hot_hit = |digest: String, text: Arc<str>| {
        let us = elapsed_us(t0);
        shared.metrics.record(Tier::Hot, us, false);
        Response::Outcome {
            tier: Tier::Hot,
            digest,
            elapsed_us: us,
            outcome: text.to_string(),
        }
    };

    // Fast path: a repeat of a memoized request identity goes straight
    // to the hot tier without re-deriving the content key.
    let canon = {
        let mut identity = query.clone();
        identity.deadline_ms = None; // the deadline is not key content
        Request::Solve(identity).render()
    };
    let memo_digest = shared.keys.get(&canon).map(|d| d.to_string());
    if let Some(digest) = &memo_digest {
        if let Some(text) = shared.hot.get(digest) {
            return hot_hit(digest.clone(), text);
        }
    }

    let cell = query.to_cell();
    let key = item_key(
        &SchemaVersions::current(),
        &cell,
        suite.as_ref(),
        requirements,
        query.validate_horizon,
    );
    let digest = key.digest_hex();
    if memo_digest.is_none() {
        shared.keys.insert(&canon, Arc::from(digest.as_str()));
    }

    // Tier 1: in-memory LRU (reachable here when the memo had lapsed
    // but the entry is still hot).
    if let Some(text) = shared.hot.get(&digest) {
        return hot_hit(digest, text);
    }

    let (result, coalesced) = match shared.flights.join(&digest) {
        Joined::Leader => {
            // Tier 2: validated disk entry; tier 3: cold solve with
            // write-through. The leader always completes and always
            // publishes — even past its own deadline — so followers
            // wake and the caches end up populated for the retry.
            let result = (|| {
                if let Some(text) = shared.cache.load_text(&key, &cell, suite.name()) {
                    return Ok((Arc::<str>::from(text), Tier::Disk));
                }
                let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let model = suite.model();
                    let mut outcome = solve_cell(&cell, model.as_ref(), requirements);
                    if let Some(horizon) = query.validate_horizon {
                        if outcome.solved() {
                            outcome.validation =
                                validate_cell(&cell, &outcome, suite.as_ref(), horizon, 1);
                        }
                    }
                    outcome
                }))
                .map_err(|_| format!("solve panicked for {}", cell.scenario.name))?;
                shared
                    .cache
                    .store(&key, &solved)
                    .map_err(|e| format!("cache write: {e}"))?;
                Ok((Arc::<str>::from(render_entry(&key, &solved)), Tier::Solve))
            })();
            if let Ok((text, _)) = &result {
                shared.hot.insert(&digest, Arc::clone(text));
            }
            shared.flights.publish(&digest, result.clone());
            (Some(result), false)
        }
        Joined::Follower(handle) => (handle.wait(Some(deadline)), true),
    };

    let us = elapsed_us(t0);
    match result {
        None => {
            shared.metrics.record_timeout();
            Response::Timeout {
                digest,
                elapsed_us: us,
            }
        }
        Some(Err(message)) => error(message),
        Some(Ok((text, tier))) => {
            if Instant::now() > deadline {
                // The work finished, the caches are warm, but the
                // caller's deadline passed: report honestly.
                shared.metrics.record_timeout();
                return Response::Timeout {
                    digest,
                    elapsed_us: us,
                };
            }
            shared.metrics.record(tier, us, coalesced);
            Response::Outcome {
                tier,
                digest,
                elapsed_us: us,
                outcome: text.to_string(),
            }
        }
    }
}
