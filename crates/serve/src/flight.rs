//! Single-flight deduplication: concurrent requests for the same
//! content digest elect one *leader* that performs the (disk load or
//! cold solve) work while every *follower* parks on a condvar and
//! receives the leader's published result — so N identical queries
//! cost exactly one solve, and a thundering herd on a cold key cannot
//! amplify load.

use crate::request::Tier;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What a flight resolves to: the verbatim entry text plus the tier
/// the leader got it from, or the leader's error message.
pub type FlightResult = Result<(Arc<str>, Tier), String>;

#[derive(Debug, Default)]
struct Flight {
    slot: Mutex<Option<FlightResult>>,
    done: Condvar,
}

/// What [`FlightMap::join`] returned: the leadership token or a
/// follower's wait handle.
#[derive(Debug)]
pub enum Joined {
    /// This request leads; it must eventually [`FlightMap::publish`].
    Leader,
    /// This request follows the digest's in-flight leader.
    Follower(FollowHandle),
}

/// A follower's handle on an in-flight result.
#[derive(Debug)]
pub struct FollowHandle {
    flight: Arc<Flight>,
}

impl FollowHandle {
    /// Blocks until the leader publishes or `deadline` passes.
    /// `None` = the deadline expired first (the flight itself keeps
    /// running and will still populate the caches).
    pub fn wait(self, deadline: Option<Instant>) -> Option<FlightResult> {
        let mut slot = self.flight.slot.lock().expect("flight lock");
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            match deadline {
                None => slot = self.flight.done.wait(slot).expect("flight lock"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (guard, timeout) = self
                        .flight
                        .done
                        .wait_timeout(slot, deadline - now)
                        .expect("flight lock");
                    slot = guard;
                    if timeout.timed_out() && slot.is_none() {
                        return None;
                    }
                }
            }
        }
    }
}

/// The per-digest flight registry.
#[derive(Debug, Default)]
pub struct FlightMap {
    flights: Mutex<HashMap<String, Arc<Flight>>>,
}

impl FlightMap {
    /// An empty registry.
    pub fn new() -> FlightMap {
        FlightMap::default()
    }

    /// Joins the flight for `digest`: the first caller per digest
    /// becomes the leader (and *must* call [`FlightMap::publish`], even
    /// on failure — otherwise followers hang until their deadlines);
    /// everyone else gets a wait handle.
    pub fn join(&self, digest: &str) -> Joined {
        let mut flights = self.flights.lock().expect("flights lock");
        match flights.get(digest) {
            Some(flight) => Joined::Follower(FollowHandle {
                flight: Arc::clone(flight),
            }),
            None => {
                flights.insert(digest.to_string(), Arc::new(Flight::default()));
                Joined::Leader
            }
        }
    }

    /// Publishes the leader's result: removes the flight (so the next
    /// request starts fresh — on success it will hit the hot tier
    /// instead) and wakes every follower.
    pub fn publish(&self, digest: &str, result: FlightResult) {
        let flight = self
            .flights
            .lock()
            .expect("flights lock")
            .remove(digest)
            .expect("publish without a joined flight");
        *flight.slot.lock().expect("flight lock") = Some(result);
        flight.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn followers_receive_the_leaders_result() {
        let map = Arc::new(FlightMap::new());
        let Joined::Leader = map.join("d") else {
            panic!("first joiner must lead");
        };
        let mut followers = Vec::new();
        for _ in 0..8 {
            let Joined::Follower(handle) = map.join("d") else {
                panic!("second joiner must follow");
            };
            followers.push(std::thread::spawn(move || handle.wait(None)));
        }
        map.publish("d", Ok((Arc::from("payload"), Tier::Solve)));
        for follower in followers {
            let (text, tier) = follower.join().unwrap().expect("published").unwrap();
            assert_eq!(&*text, "payload");
            assert_eq!(tier, Tier::Solve);
        }
        // The flight is gone: the next joiner leads again.
        assert!(matches!(map.join("d"), Joined::Leader));
    }

    #[test]
    fn follower_deadline_expires_without_a_publish() {
        let map = FlightMap::new();
        assert!(matches!(map.join("d"), Joined::Leader));
        let Joined::Follower(handle) = map.join("d") else {
            panic!("expected follower");
        };
        let t0 = Instant::now();
        let result = handle.wait(Some(t0 + Duration::from_millis(30)));
        assert!(result.is_none(), "deadline must expire, not hang");
        assert!(t0.elapsed() >= Duration::from_millis(30));
        map.publish("d", Err("late".into())); // leader still cleans up
    }
}
