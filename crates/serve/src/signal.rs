//! SIGTERM/SIGINT → drain flag, without a libc dependency: a minimal
//! `extern "C"` declaration of POSIX `signal(2)` installs a handler
//! that flips one static [`AtomicBool`] — the only async-signal-safe
//! action taken — and the server's accept loop polls that flag. The
//! `unsafe` surface of the whole crate is the two `signal` calls in
//! this module.

use std::sync::atomic::AtomicBool;

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe by construction.
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::sync::atomic::AtomicBool;

    pub(super) static STOP: AtomicBool = AtomicBool::new(false);

    pub(super) fn install() {
        // No signal wiring off Unix: the flag only flips programmatically.
    }
}

/// Installs SIGINT/SIGTERM handlers (idempotent) and returns the drain
/// flag they set — hand it to [`crate::Server::start`] so a signal
/// triggers the same clean drain as a programmatic shutdown.
pub fn install_drain_flag() -> &'static AtomicBool {
    sys::install();
    &sys::STOP
}
