//! The scripting/CI client: one TCP connection, line-delimited JSON
//! request/response pairs. `study query` is a thin shell over this.

use crate::request::{Request, Response};
use std::io::{self, BufRead as _, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected client.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(120))).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends one raw line and returns the raw response line (no
    /// trailing newline).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server that closed mid-exchange.
    pub fn exchange_line(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end_matches(['\n', '\r']).to_string())
    }

    /// Sends one request and parses the response. Application-level
    /// failures arrive as [`Response::Error`]/[`Response::Overloaded`]/
    /// [`Response::Timeout`], not as `Err`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unparseable response line.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let line = self.exchange_line(&request.render())?;
        Response::parse(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response line: {e}"),
            )
        })
    }
}
