//! End-to-end service tests over real sockets: byte-identity of
//! served outcomes against the offline runner, tier progression
//! (solved → hot), deadlines, load-shedding, stats, and a clean drain.

use edmac_serve::{Client, Request, Response, ServeConfig, Server, SolveRequest, Tier};
use edmac_study::{run_study, RunOptions, StudyConfig};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edmac-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(cache_dir: PathBuf, workers: usize, queue_cap: usize) -> Server {
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir,
        workers,
        hot_cap: 64,
        queue_cap,
        default_deadline_ms: 30_000,
        log: false,
    };
    Server::start(&config, Arc::new(AtomicBool::new(false))).expect("bind")
}

/// Smoke config with no validation: fast, and identical to what the
/// offline runner caches for the same keys.
fn smoke_config(cache_dir: &std::path::Path) -> StudyConfig {
    let mut config = StudyConfig::smoke();
    config.validate_every = 0;
    config.cache_dir = Some(cache_dir.to_path_buf());
    config
}

/// Every smoke work item as a wire request (mirrors `study query
/// --smoke`).
fn smoke_requests(config: &StudyConfig) -> Vec<SolveRequest> {
    let suites = edmac_proto::ProtocolRegistry::builtin()
        .select(&config.protocols)
        .unwrap();
    let mut requests = Vec::new();
    for cell in config.grid.cells() {
        for (suite_idx, suite) in suites.iter().enumerate() {
            let grid_work = cell.index * suites.len() + suite_idx;
            requests.push(SolveRequest::for_cell(
                &cell,
                &config.grid,
                suite.name(),
                config.requirements,
                edmac_study::validation_intent(config, grid_work),
            ));
        }
    }
    requests
}

#[test]
fn warm_cache_responses_are_byte_identical_to_the_offline_entries() {
    let root = temp_root("bytes");
    let cache_dir = root.join("cache");
    let config = smoke_config(&cache_dir);
    // Offline cold run populates the cache the server will front.
    run_study(&config, &RunOptions::default()).unwrap();

    let server = start(cache_dir.clone(), 2, 16);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut seen = 0;
    for query in smoke_requests(&config) {
        let response = client.request(&Request::Solve(query)).unwrap();
        let Response::Outcome {
            tier,
            digest,
            outcome,
            ..
        } = response
        else {
            panic!("expected an outcome, got {response:?}");
        };
        assert_eq!(tier, Tier::Disk, "warm cache must answer from disk");
        let on_disk = std::fs::read_to_string(cache_dir.join(format!("{digest}.entry"))).unwrap();
        assert_eq!(
            outcome, on_disk,
            "served payload must be byte-identical to the offline entry"
        );
        seen += 1;
    }
    assert_eq!(seen, 12);
    // Replay: every repeat is a hot-tier hit with the same bytes.
    for query in smoke_requests(&config) {
        let response = client.request(&Request::Solve(query)).unwrap();
        let Response::Outcome {
            tier,
            outcome,
            digest,
            ..
        } = response
        else {
            panic!("expected an outcome");
        };
        assert_eq!(tier, Tier::Hot);
        let on_disk = std::fs::read_to_string(cache_dir.join(format!("{digest}.entry"))).unwrap();
        assert_eq!(outcome, on_disk);
    }
    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn cold_solves_write_through_and_match_the_offline_runner() {
    let root = temp_root("cold");
    let served_dir = root.join("served-cache");
    let offline_dir = root.join("offline-cache");
    let config = smoke_config(&offline_dir);

    // Serve everything cold against an empty cache...
    let server = start(served_dir.clone(), 2, 16);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut served: Vec<(String, String)> = Vec::new();
    for query in smoke_requests(&config) {
        let Response::Outcome {
            tier,
            digest,
            outcome,
            ..
        } = client.request(&Request::Solve(query)).unwrap()
        else {
            panic!("expected an outcome");
        };
        assert_eq!(tier, Tier::Solve, "empty cache must solve cold");
        served.push((digest, outcome));
    }
    server.shutdown();

    // ...then let the offline runner solve the same grid, and compare
    // entry for entry: the wire and the batch path agree to the byte.
    run_study(&config, &RunOptions::default()).unwrap();
    for (digest, outcome) in &served {
        let offline = std::fs::read_to_string(offline_dir.join(format!("{digest}.entry"))).unwrap();
        assert_eq!(outcome, &offline, "digest {digest}");
        let written = std::fs::read_to_string(served_dir.join(format!("{digest}.entry"))).unwrap();
        assert_eq!(outcome, &written, "write-through must persist the payload");
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn expired_deadline_reports_timeout_then_the_warm_retry_hits() {
    let root = temp_root("deadline");
    let config = smoke_config(&root.join("cache"));
    let server = start(root.join("cache"), 2, 16);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut query = smoke_requests(&config).remove(0);
    query.deadline_ms = Some(0); // expires before any solve can finish
    let response = client.request(&Request::Solve(query.clone())).unwrap();
    let Response::Timeout { digest, .. } = response else {
        panic!("a 0 ms deadline must report timeout, got {response:?}");
    };
    // The solve still completed server-side: the retry is warm.
    query.deadline_ms = None;
    let Response::Outcome {
        tier,
        digest: retry_digest,
        ..
    } = client.request(&Request::Solve(query)).unwrap()
    else {
        panic!("retry must succeed");
    };
    assert_eq!(retry_digest, digest);
    assert_eq!(tier, Tier::Hot, "timed-out work must still warm the tiers");
    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn malformed_and_unknown_requests_answer_errors_not_hangs() {
    let root = temp_root("errors");
    let server = start(root.join("cache"), 1, 16);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let line = client.exchange_line("this is not json").unwrap();
    let Response::Error { .. } = Response::parse(&line).unwrap() else {
        panic!("malformed line must answer an error");
    };
    let config = smoke_config(&root.join("cache"));
    let mut query = smoke_requests(&config).remove(0);
    query.protocol = "no-such-mac".into();
    let Response::Error { message } = client.request(&Request::Solve(query)).unwrap() else {
        panic!("unknown protocol must answer an error");
    };
    assert!(message.contains("no-such-mac"), "{message}");
    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn full_queue_sheds_with_an_explicit_overloaded_status() {
    let root = temp_root("shed");
    // One worker, queue bound 1: the worker parks on an idle open
    // connection, one more waits in the queue, and every connection
    // beyond that must be shed by the acceptor.
    let server = start(root.join("cache"), 1, 1);
    let addr = server.local_addr();
    let _held_by_worker = Client::connect(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));
    let _queued = Client::connect(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(200));

    let mut shed = Client::connect(addr).unwrap();
    let line = shed.exchange_line(&Request::Stats.render()).unwrap();
    assert_eq!(
        Response::parse(&line).unwrap(),
        Response::Overloaded,
        "beyond-capacity connections must be answered, never hung"
    );
    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn stats_verb_reports_tier_hits_in_the_shared_schema() {
    let root = temp_root("stats");
    let config = smoke_config(&root.join("cache"));
    let server = start(root.join("cache"), 2, 16);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let query = smoke_requests(&config).remove(0);
    client.request(&Request::Solve(query.clone())).unwrap(); // cold solve
    client.request(&Request::Solve(query)).unwrap(); // hot hit

    let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
        panic!("expected stats");
    };
    assert_eq!(stats.str_("schema").unwrap(), edmac_serve::STATS_SCHEMA);
    assert_eq!(stats.str_("source").unwrap(), "serve");
    assert_eq!(stats.usize_("items").unwrap(), 2);
    assert_eq!(stats.usize_("misses").unwrap(), 1);
    assert_eq!(stats.usize_("entries").unwrap(), 1);
    let tiers = stats.get("tiers").unwrap();
    assert_eq!(tiers.get("hot").unwrap().u64_("hits").unwrap(), 1);
    assert_eq!(tiers.get("solve").unwrap().u64_("hits").unwrap(), 1);
    assert!(tiers.get("solve").unwrap().u64_("max_us").unwrap() > 0);
    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn shutdown_drains_queued_connections_cleanly() {
    let root = temp_root("drain");
    let server = start(root.join("cache"), 2, 16);
    let addr = server.local_addr();
    // A client with an in-flight exchange across the shutdown: the
    // drain must still answer it.
    let mut client = Client::connect(addr).unwrap();
    let responder = std::thread::spawn(move || {
        let line = client.exchange_line(&Request::Stats.render()).unwrap();
        Response::parse(&line).unwrap()
    });
    let response = responder.join().unwrap();
    assert!(matches!(response, Response::Stats(_)));
    server.shutdown(); // joins every thread: deadlock here = test hang
                       // Post-drain, the port no longer accepts service.
    assert!(
        Client::connect(addr)
            .and_then(|mut c| c.exchange_line(&Request::Stats.render()))
            .is_err(),
        "a drained server must not keep serving"
    );
    std::fs::remove_dir_all(&root).unwrap();
}
