//! Concurrency gauntlet: the single-flight acceptance criterion (≥100
//! concurrent identical cold queries → exactly one solve) and the
//! corruption contract (concurrent or torn entry writes degrade to a
//! miss, never a wrong answer).

use edmac_serve::{Client, Request, Response, ServeConfig, Server, SolveRequest, Tier};
use edmac_study::{item_key, render_entry, solve_cell, CellCache, SchemaVersions, StudyConfig};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Barrier};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edmac-serve-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One smoke work item as a request (the ring cell, protocol X-MAC).
fn one_query(config: &StudyConfig) -> SolveRequest {
    let cell = &config.grid.cells()[0];
    SolveRequest::for_cell(cell, &config.grid, "X-MAC", config.requirements, None)
}

#[test]
fn a_hundred_concurrent_identical_cold_queries_solve_exactly_once() {
    let root = temp_root("flight");
    let config = StudyConfig::smoke();
    let server = Server::start(
        &ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_dir: root.join("cache"),
            workers: 8,
            hot_cap: 64,
            queue_cap: 256,
            default_deadline_ms: 120_000,
            log: false,
        },
        Arc::new(AtomicBool::new(false)),
    )
    .unwrap();
    let addr = server.local_addr();
    let mut query = one_query(&config);
    // Packet-level validation makes the one solve slow enough that the
    // herd genuinely overlaps it.
    query.validate_horizon = Some(config.sim_horizon);

    const HERD: usize = 100;
    let barrier = Arc::new(Barrier::new(HERD));
    let mut responders = Vec::new();
    for _ in 0..HERD {
        let barrier = Arc::clone(&barrier);
        let query = query.clone();
        responders.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            barrier.wait();
            client.request(&Request::Solve(query)).unwrap()
        }));
    }
    let mut payloads = Vec::new();
    for responder in responders {
        match responder.join().unwrap() {
            Response::Outcome { outcome, .. } => payloads.push(outcome),
            other => panic!("herd request failed: {other:?}"),
        }
    }
    assert_eq!(payloads.len(), HERD);
    assert!(
        payloads.iter().all(|p| p == &payloads[0]),
        "every response must carry identical bytes"
    );

    // The observable acceptance criterion: exactly one solve.
    let mut client = Client::connect(addr).unwrap();
    let Response::Stats(stats) = client.request(&Request::Stats).unwrap() else {
        panic!("expected stats");
    };
    assert_eq!(stats.usize_("items").unwrap(), HERD);
    assert_eq!(
        stats.usize_("misses").unwrap(),
        1,
        "single-flight must dedup the herd to one solve"
    );
    assert_eq!(stats.usize_("hits").unwrap(), HERD - 1);
    // And exactly one entry was written through.
    let entries = std::fs::read_dir(root.join("cache"))
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .ends_with(".entry")
        })
        .count();
    assert_eq!(entries, 1);
    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn concurrent_stores_never_yield_a_torn_read() {
    let root = temp_root("torn");
    let config = StudyConfig::smoke();
    let cell = &config.grid.cells()[0];
    let registry = edmac_proto::ProtocolRegistry::builtin();
    let suite = registry.suite("X-MAC").unwrap();
    let key = item_key(
        &SchemaVersions::current(),
        cell,
        suite.as_ref(),
        config.requirements,
        None,
    );
    let model = suite.model();
    let outcome = solve_cell(cell, model.as_ref(), config.requirements);
    let expected = render_entry(&key, &outcome);

    let cache = CellCache::open(&root.join("cache")).unwrap();
    std::thread::scope(|scope| {
        // Writers hammer the same key with identical (deterministic)
        // content; readers must only ever observe a miss or the full
        // exact bytes — a torn or truncated entry must parse-fail into
        // a miss, never surface as a wrong answer.
        for _ in 0..4 {
            let (cache, key, outcome) = (&cache, &key, &outcome);
            scope.spawn(move || {
                for _ in 0..50 {
                    // Racing renames on the same key may lose (NotFound
                    // on a tmp file another writer just published);
                    // the atomicity contract is about *readers*.
                    let _ = cache.store(key, outcome);
                }
            });
        }
        for _ in 0..4 {
            let (cache, key, expected) = (&cache, &key, &expected);
            let protocol = suite.name();
            scope.spawn(move || {
                let mut hits = 0;
                for _ in 0..200 {
                    if let Some(text) = cache.load_text(key, cell, protocol) {
                        assert_eq!(&text, expected, "a hit must be the exact bytes");
                        hits += 1;
                    }
                }
                hits
            });
        }
    });
    // After the dust settles the entry is whole.
    assert_eq!(
        cache.load_text(&key, cell, suite.name()).as_ref(),
        Some(&expected)
    );
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn corrupt_entries_degrade_to_a_miss_and_are_healed_by_the_solve() {
    let root = temp_root("corrupt");
    let config = StudyConfig::smoke();
    let query = one_query(&config);
    let cell = query.to_cell();
    let registry = edmac_proto::ProtocolRegistry::builtin();
    let suite = registry.suite("X-MAC").unwrap();
    let key = item_key(
        &SchemaVersions::current(),
        &cell,
        suite.as_ref(),
        config.requirements,
        None,
    );
    let digest = key.digest_hex();
    let cache_dir = root.join("cache");
    std::fs::create_dir_all(&cache_dir).unwrap();
    // A truncated entry that passes the cheap 2-line probe but cannot
    // fully parse: the serve path must treat it as a miss.
    std::fs::write(
        cache_dir.join(format!("{digest}.entry")),
        format!(
            "edmac-study/cache-entry/v1\nkey {}\nprotocol X-MAC\n",
            key.canonical()
        ),
    )
    .unwrap();

    let server = Server::start(
        &ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_dir: cache_dir.clone(),
            workers: 2,
            hot_cap: 16,
            queue_cap: 16,
            default_deadline_ms: 60_000,
            log: false,
        },
        Arc::new(AtomicBool::new(false)),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let Response::Outcome {
        tier,
        outcome,
        digest: served_digest,
        ..
    } = client.request(&Request::Solve(query)).unwrap()
    else {
        panic!("expected an outcome");
    };
    assert_eq!(served_digest, digest);
    assert_eq!(
        tier,
        Tier::Solve,
        "a corrupt entry must miss, not serve garbage"
    );
    // The answer is the real solve, and the write-through healed the
    // entry on disk.
    let model = suite.model();
    let solved = solve_cell(&cell, model.as_ref(), config.requirements);
    let expected = render_entry(&key, &solved);
    assert_eq!(outcome, expected);
    assert_eq!(
        std::fs::read_to_string(cache_dir.join(format!("{digest}.entry"))).unwrap(),
        expected
    );
    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}
