//! The continuous Nash bargaining solver — the paper's problem (P4).

use crate::error::GameError;
use crate::point::CostPoint;
use edmac_optim::{grid_minimize, Bounds, LogBarrier};

/// Result of the continuous bargaining solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousBargain {
    /// The optimal parameter vector `X*`.
    pub params: Vec<f64>,
    /// The costs `(E*, L*)` at `X*`.
    pub point: CostPoint,
    /// The Nash product of gains at the solution.
    pub nash_product: f64,
}

/// Solves the paper's (P4): maximize
/// `log(v.x − c₁(X)) + log(v.y − c₂(X))` over the parameter box, subject
/// to the application caps `c(X) ≤ caps` component-wise.
///
/// `costs` maps a parameter vector to its cost pair and may return
/// non-finite costs for invalid parameters (treated as infeasible). The
/// solver runs a coarse grid sweep to locate a strictly feasible,
/// product-maximizing cell — the global phase the untransformed (P3)
/// needs because it is non-convex — then refines with the interior-point
/// [`LogBarrier`].
///
/// # Errors
///
/// * [`GameError::NonFiniteDisagreement`] if `v` is not finite.
/// * [`GameError::NoGainRegion`] if no grid point strictly improves on
///   `v` while respecting `caps`.
/// * [`GameError::Solver`] if the inner optimizer fails.
///
/// # Examples
///
/// ```
/// use edmac_game::{nash_continuous, CostPoint};
/// use edmac_optim::Bounds;
///
/// // One parameter t in [0,1] trading cost x = t against y = 1 - t.
/// let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
/// let costs = |p: &[f64]| CostPoint::new(p[0], 1.0 - p[0]);
/// let v = CostPoint::new(1.0, 1.0);
/// let caps = CostPoint::new(1.0, 1.0);
/// let b = nash_continuous(costs, &bounds, v, caps, 64).unwrap();
/// // Symmetric game: equal split.
/// assert!((b.point.x - 0.5).abs() < 1e-3);
/// ```
pub fn nash_continuous<F: Fn(&[f64]) -> CostPoint>(
    costs: F,
    bounds: &Bounds,
    v: CostPoint,
    caps: CostPoint,
    grid_points_per_dim: usize,
) -> Result<ContinuousBargain, GameError> {
    if !v.is_finite() {
        return Err(GameError::NonFiniteDisagreement);
    }
    // Effective upper bounds on each cost: both the threat point and the
    // application requirement must hold, per (P3)'s constraint block.
    let cap_x = caps.x.min(v.x);
    let cap_y = caps.y.min(v.y);

    // Global phase: maximize the product on a grid (minimize its
    // negation), mapping infeasible points to +inf.
    let score = |p: &[f64]| {
        let c = costs(p);
        if !c.is_finite() || c.x >= cap_x || c.y >= cap_y {
            return f64::INFINITY;
        }
        let product = (v.x - c.x) * (v.y - c.y);
        -product
    };
    let seed = match grid_minimize(score, bounds, grid_points_per_dim.max(2)) {
        Ok(m) if m.value < 0.0 => m,
        Ok(_) | Err(edmac_optim::OptimError::Infeasible) => return Err(GameError::NoGainRegion),
        Err(e) => return Err(GameError::Solver(e)),
    };

    // Local phase: interior-point refinement of the concave log form.
    let objective = |p: &[f64]| {
        let c = costs(p);
        if !c.is_finite() {
            return f64::NEG_INFINITY;
        }
        let (gx, gy) = (v.x - c.x, v.y - c.y);
        if gx <= 0.0 || gy <= 0.0 {
            return f64::NEG_INFINITY;
        }
        gx.ln() + gy.ln()
    };
    let g_budget = |p: &[f64]| {
        let c = costs(p);
        if !c.is_finite() {
            return 1.0; // infeasible
        }
        c.x - cap_x
    };
    let g_latency = |p: &[f64]| {
        let c = costs(p);
        if !c.is_finite() {
            return 1.0;
        }
        c.y - cap_y
    };
    let refined =
        LogBarrier::default().maximize(objective, &[&g_budget, &g_latency], &seed.x, bounds);

    let params = match refined {
        Ok(m) => {
            // Keep the better of seed and refinement (the barrier can
            // stall on plateaus of piecewise models).
            let seed_product = -seed.value;
            let refined_product = costs(&m.x).nash_product(v);
            if refined_product > seed_product {
                m.x
            } else {
                seed.x
            }
        }
        Err(_) => seed.x,
    };
    let point = costs(&params);
    Ok(ContinuousBargain {
        nash_product: point.nash_product(v),
        params,
        point,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_bounds() -> Bounds {
        Bounds::new(vec![(0.0, 1.0)]).unwrap()
    }

    #[test]
    fn symmetric_tradeoff_splits_equally() {
        let costs = |p: &[f64]| CostPoint::new(p[0], 1.0 - p[0]);
        let b = nash_continuous(
            costs,
            &unit_bounds(),
            CostPoint::new(1.0, 1.0),
            CostPoint::new(1.0, 1.0),
            33,
        )
        .unwrap();
        assert!((b.point.x - 0.5).abs() < 1e-3, "{:?}", b);
        assert!((b.nash_product - 0.25).abs() < 1e-3);
    }

    #[test]
    fn caps_bind_the_solution() {
        // Same trade-off but player-x cost capped at 0.3: solution must
        // satisfy x <= 0.3 even though the unconstrained NBS is 0.5.
        let costs = |p: &[f64]| CostPoint::new(p[0], 1.0 - p[0]);
        let b = nash_continuous(
            costs,
            &unit_bounds(),
            CostPoint::new(1.0, 1.0),
            CostPoint::new(0.3, 1.0),
            65,
        )
        .unwrap();
        assert!(b.point.x <= 0.3 + 1e-9, "{:?}", b);
        assert!(b.point.x > 0.25, "should press toward the cap, got {:?}", b);
    }

    #[test]
    fn asymmetric_curvature_shifts_solution() {
        // y falls off quadratically: gains are (1-t, 1-(1-t)^2)... Nash
        // optimum of (1-t)*(1-(1-t)^2)... substitute u=1-t: max u(1-u^2)
        // -> u = 1/sqrt(3).
        let costs = |p: &[f64]| CostPoint::new(p[0], (1.0 - p[0]).powi(2));
        let b = nash_continuous(
            costs,
            &unit_bounds(),
            CostPoint::new(1.0, 1.0),
            CostPoint::new(1.0, 1.0),
            65,
        )
        .unwrap();
        let expected = 1.0 - 1.0 / 3.0f64.sqrt();
        assert!((b.point.x - expected).abs() < 1e-2, "{:?} vs {expected}", b);
    }

    #[test]
    fn no_gain_region_is_reported() {
        // Costs always exceed the disagreement point.
        let costs = |p: &[f64]| CostPoint::new(p[0] + 2.0, 3.0 - p[0]);
        let r = nash_continuous(
            costs,
            &unit_bounds(),
            CostPoint::new(1.0, 1.0),
            CostPoint::new(1.0, 1.0),
            17,
        );
        assert_eq!(r.unwrap_err(), GameError::NoGainRegion);
    }

    #[test]
    fn nan_costs_are_treated_as_infeasible() {
        let costs = |p: &[f64]| {
            if p[0] < 0.5 {
                CostPoint::new(f64::NAN, 0.0)
            } else {
                CostPoint::new(p[0], 1.0 - p[0])
            }
        };
        let b = nash_continuous(
            costs,
            &unit_bounds(),
            CostPoint::new(1.0, 1.0),
            CostPoint::new(1.0, 1.0),
            65,
        )
        .unwrap();
        assert!(b.point.is_finite());
        assert!(b.params[0] >= 0.5);
    }
}
