//! A common interface over the crate's solution concepts.
//!
//! The bargaining-vs-aggregate study (Kannan & Wei's strategic-vs-
//! aggregate energy minimization; Khodaian et al.'s utility-energy
//! trade-off) runs *every* solution concept over the same sampled
//! frontier of every scenario cell. [`SolutionConcept`] gives the study
//! one object-safe handle per concept — the four bargaining solutions
//! ([`Nash`], [`WeightedNash`], [`KalaiSmorodinsky`], [`Egalitarian`])
//! and the non-strategic [`WeightedSum`] aggregate — so the harness
//! can iterate a `Vec<Box<dyn SolutionConcept>>` without a per-concept
//! match.
//!
//! # Examples
//!
//! ```
//! use edmac_game::{standard_concepts, BargainingProblem, CostPoint};
//!
//! let game = BargainingProblem::new(
//!     vec![CostPoint::new(1.0, 7.0), CostPoint::new(3.5, 3.5), CostPoint::new(7.0, 1.0)],
//!     CostPoint::new(8.0, 8.0),
//! ).unwrap();
//! for concept in standard_concepts() {
//!     let agreement = concept.solve(&game).unwrap();
//!     assert!(agreement.point.is_finite(), "{} failed", concept.key());
//! }
//! ```

use crate::error::GameError;
use crate::problem::{Bargain, BargainingProblem};
use crate::weighted::BargainingPower;

/// An object-safe solution concept: anything that maps a
/// [`BargainingProblem`] to one selected agreement.
pub trait SolutionConcept {
    /// Stable machine-readable identifier (CSV column value), e.g.
    /// `"nash"`, `"wnash_0.75"`, `"wsum_0.50"`.
    fn key(&self) -> String;

    /// Whether the concept is strategic (uses the disagreement point)
    /// or an aggregate scalarization that ignores it.
    fn is_strategic(&self) -> bool {
        true
    }

    /// Selects the agreement on `problem`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying solver's error (typically
    /// [`GameError::NoGainRegion`] for strategic concepts on games
    /// without a gain region).
    fn solve(&self, problem: &BargainingProblem) -> Result<Bargain, GameError>;
}

impl std::fmt::Debug for dyn SolutionConcept + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SolutionConcept({})", self.key())
    }
}

/// The symmetric Nash Bargaining Solution ([`BargainingProblem::nash`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Nash;

impl SolutionConcept for Nash {
    fn key(&self) -> String {
        "nash".into()
    }

    fn solve(&self, problem: &BargainingProblem) -> Result<Bargain, GameError> {
        problem.nash()
    }
}

/// The asymmetric Nash solution at a fixed bargaining power
/// ([`BargainingProblem::nash_weighted`]).
#[derive(Debug, Clone, Copy)]
pub struct WeightedNash(pub BargainingPower);

impl SolutionConcept for WeightedNash {
    fn key(&self) -> String {
        format!("wnash_{:.2}", self.0.first())
    }

    fn solve(&self, problem: &BargainingProblem) -> Result<Bargain, GameError> {
        problem.nash_weighted(self.0)
    }
}

/// The Kalai–Smorodinsky solution
/// ([`BargainingProblem::kalai_smorodinsky`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct KalaiSmorodinsky;

impl SolutionConcept for KalaiSmorodinsky {
    fn key(&self) -> String {
        "ks".into()
    }

    fn solve(&self, problem: &BargainingProblem) -> Result<Bargain, GameError> {
        problem.kalai_smorodinsky()
    }
}

/// The egalitarian solution ([`BargainingProblem::egalitarian`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Egalitarian;

impl SolutionConcept for Egalitarian {
    fn key(&self) -> String {
        "egal".into()
    }

    fn solve(&self, problem: &BargainingProblem) -> Result<Bargain, GameError> {
        problem.egalitarian()
    }
}

/// The weighted-sum aggregate scalarization
/// ([`BargainingProblem::weighted_sum`]) — the non-strategic baseline.
#[derive(Debug, Clone, Copy)]
pub struct WeightedSum {
    /// Weight on the first (energy) cost, in `[0, 1]`.
    pub energy_weight: f64,
}

impl SolutionConcept for WeightedSum {
    fn key(&self) -> String {
        format!("wsum_{:.2}", self.energy_weight)
    }

    fn is_strategic(&self) -> bool {
        false
    }

    fn solve(&self, problem: &BargainingProblem) -> Result<Bargain, GameError> {
        problem.weighted_sum(self.energy_weight)
    }
}

/// The study's standard panel, in fixed order: symmetric Nash, the two
/// skewed weighted-Nash variants, Kalai–Smorodinsky, egalitarian, and
/// the balanced weighted-sum aggregate.
pub fn standard_concepts() -> Vec<Box<dyn SolutionConcept>> {
    vec![
        Box::new(Nash),
        Box::new(WeightedNash(
            BargainingPower::new(0.25).expect("static power is valid"),
        )),
        Box::new(WeightedNash(
            BargainingPower::new(0.75).expect("static power is valid"),
        )),
        Box::new(KalaiSmorodinsky),
        Box::new(Egalitarian),
        Box::new(WeightedSum { energy_weight: 0.5 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::CostPoint;

    fn game() -> BargainingProblem {
        BargainingProblem::new(
            vec![
                CostPoint::new(1.0, 7.0),
                CostPoint::new(2.0, 5.0),
                CostPoint::new(3.5, 3.5),
                CostPoint::new(5.0, 2.0),
                CostPoint::new(7.0, 1.0),
            ],
            CostPoint::new(8.0, 8.0),
        )
        .unwrap()
    }

    #[test]
    fn panel_has_at_least_four_concepts_with_unique_keys() {
        let panel = standard_concepts();
        assert!(panel.len() >= 4);
        let mut keys: Vec<String> = panel.iter().map(|c| c.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), panel.len(), "concept keys must be unique");
    }

    #[test]
    fn trait_solutions_match_the_inherent_methods() {
        let g = game();
        assert_eq!(Nash.solve(&g).unwrap().point, g.nash().unwrap().point);
        assert_eq!(
            KalaiSmorodinsky.solve(&g).unwrap().point,
            g.kalai_smorodinsky().unwrap().point
        );
        assert_eq!(
            Egalitarian.solve(&g).unwrap().point,
            g.egalitarian().unwrap().point
        );
        let p = BargainingPower::new(0.75).unwrap();
        assert_eq!(
            WeightedNash(p).solve(&g).unwrap().point,
            g.nash_weighted(p).unwrap().point
        );
        assert_eq!(
            WeightedSum { energy_weight: 0.5 }.solve(&g).unwrap().point,
            g.weighted_sum(0.5).unwrap().point
        );
    }

    #[test]
    fn only_the_aggregate_is_non_strategic() {
        for c in standard_concepts() {
            assert_eq!(
                c.is_strategic(),
                !c.key().starts_with("wsum"),
                "{}",
                c.key()
            );
        }
    }

    #[test]
    fn aggregate_survives_games_without_a_gain_region() {
        // Every strategic concept fails on a gain-free game; the
        // aggregate, which never consults v, still picks a point.
        let g = BargainingProblem::new(
            vec![CostPoint::new(5.0, 1.0), CostPoint::new(1.0, 5.0)],
            CostPoint::new(2.0, 2.0),
        )
        .unwrap();
        for c in standard_concepts() {
            if c.is_strategic() {
                assert_eq!(c.solve(&g).unwrap_err(), GameError::NoGainRegion);
            } else {
                assert!(c.solve(&g).is_ok());
            }
        }
    }
}
