//! Discrete bargaining problems over sampled feasible sets.

use crate::error::GameError;
use crate::point::CostPoint;

/// The agreement a solution concept selects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bargain {
    /// The selected cost pair.
    pub point: CostPoint,
    /// Index of the selected point in the problem's feasible set.
    pub index: usize,
    /// The Nash product of gains at the selected point (reported for
    /// every concept, as a common comparison scale).
    pub nash_product: f64,
}

/// A two-player bargaining problem over a *sampled* feasible set of cost
/// pairs with a disagreement point `v`.
///
/// The sampled formulation mirrors how the paper's framework actually
/// uses the game: each candidate MAC parameter vector contributes one
/// `(E, L)` outcome, `v = (Eworst, Lworst)`, and the solution concepts
/// select among the candidates. A continuous refinement lives in
/// [`nash_continuous`](crate::nash_continuous).
///
/// # Examples
///
/// ```
/// use edmac_game::{BargainingProblem, CostPoint};
///
/// let game = BargainingProblem::new(
///     vec![CostPoint::new(2.0, 2.0), CostPoint::new(1.0, 4.0)],
///     CostPoint::new(5.0, 5.0),
/// ).unwrap();
/// // Gains: (3)(3)=9 vs (4)(1)=4 — Nash picks the balanced point.
/// assert_eq!(game.nash().unwrap().point, CostPoint::new(2.0, 2.0));
/// ```
#[derive(Debug, Clone)]
pub struct BargainingProblem {
    feasible: Vec<CostPoint>,
    disagreement: CostPoint,
}

impl BargainingProblem {
    /// Creates a problem from a feasible outcome set and disagreement
    /// point.
    ///
    /// Non-finite outcomes are dropped.
    ///
    /// # Errors
    ///
    /// * [`GameError::NonFiniteDisagreement`] if `v` is not finite.
    /// * [`GameError::EmptyFeasibleSet`] if nothing remains after
    ///   filtering.
    pub fn new(
        feasible: Vec<CostPoint>,
        disagreement: CostPoint,
    ) -> Result<BargainingProblem, GameError> {
        if !disagreement.is_finite() {
            return Err(GameError::NonFiniteDisagreement);
        }
        let feasible: Vec<CostPoint> = feasible.into_iter().filter(CostPoint::is_finite).collect();
        if feasible.is_empty() {
            return Err(GameError::EmptyFeasibleSet);
        }
        Ok(BargainingProblem {
            feasible,
            disagreement,
        })
    }

    /// The feasible outcomes.
    pub fn feasible(&self) -> &[CostPoint] {
        &self.feasible
    }

    /// The disagreement (threat) point `v`.
    pub fn disagreement(&self) -> CostPoint {
        self.disagreement
    }

    /// Returns `true` if some outcome strictly improves on `v` for both
    /// players — the existence condition of the Nash solution.
    pub fn has_gain_region(&self) -> bool {
        self.feasible
            .iter()
            .any(|p| p.strictly_dominates(self.disagreement))
    }

    /// The **Nash Bargaining Solution**: the outcome maximizing the
    /// product of gains `(v₁ − c₁)(v₂ − c₂)` among outcomes improving on
    /// `v` for both players. Ties break toward the earlier index
    /// (deterministic).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::NoGainRegion`] if no outcome strictly
    /// improves on the disagreement point for both players.
    pub fn nash(&self) -> Result<Bargain, GameError> {
        self.argmax(|p| {
            if p.strictly_dominates(self.disagreement) {
                p.nash_product(self.disagreement)
            } else {
                f64::NEG_INFINITY
            }
        })
    }

    /// The **Kalai–Smorodinsky solution**: the outcome that best
    /// equalizes gains normalized by each player's ideal gain
    /// (distance from `v` to the per-player best feasible cost),
    /// maximizing the smaller normalized gain. The classic alternative
    /// to Nash that keeps Pareto optimality and symmetry but trades
    /// independence-of-irrelevant-alternatives for monotonicity.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::NoGainRegion`] if no outcome strictly
    /// improves on the disagreement point for both players.
    pub fn kalai_smorodinsky(&self) -> Result<Bargain, GameError> {
        let ideal_x = self
            .feasible
            .iter()
            .map(|p| p.x)
            .fold(f64::INFINITY, f64::min);
        let ideal_y = self
            .feasible
            .iter()
            .map(|p| p.y)
            .fold(f64::INFINITY, f64::min);
        let span_x = (self.disagreement.x - ideal_x).max(f64::MIN_POSITIVE);
        let span_y = (self.disagreement.y - ideal_y).max(f64::MIN_POSITIVE);
        self.argmax(|p| {
            if p.strictly_dominates(self.disagreement) {
                let (gx, gy) = p.gains_from(self.disagreement);
                (gx / span_x).min(gy / span_y)
            } else {
                f64::NEG_INFINITY
            }
        })
    }

    /// The **egalitarian solution**: maximizes the smaller *absolute*
    /// gain, i.e. pushes both players' improvements over `v` up
    /// together.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::NoGainRegion`] if no outcome strictly
    /// improves on the disagreement point for both players.
    pub fn egalitarian(&self) -> Result<Bargain, GameError> {
        self.argmax(|p| {
            if p.strictly_dominates(self.disagreement) {
                let (gx, gy) = p.gains_from(self.disagreement);
                gx.min(gy)
            } else {
                f64::NEG_INFINITY
            }
        })
    }

    /// The **weighted-sum aggregate scalarization** — the non-strategic
    /// baseline of Kannan & Wei's strategic-vs-aggregate comparison:
    /// minimize `w·x̂ + (1−w)·ŷ` over the whole feasible set, where
    /// `x̂`/`ŷ` are each cost normalized to `[0, 1]` across the set's
    /// own extent (so the weight is scale-free).
    ///
    /// Unlike the bargaining concepts this *ignores the disagreement
    /// point entirely* — it may select an outcome outside the gain
    /// region, which is precisely the efficiency/fairness gap the
    /// bargaining-vs-aggregate study measures. The reported
    /// `nash_product` is still computed against `v` for comparability.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidWeight`] unless `0 ≤ w ≤ 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use edmac_game::{BargainingProblem, CostPoint};
    ///
    /// let game = BargainingProblem::new(
    ///     vec![CostPoint::new(1.0, 7.0), CostPoint::new(3.0, 3.0), CostPoint::new(7.0, 1.0)],
    ///     CostPoint::new(8.0, 8.0),
    /// ).unwrap();
    /// // An x-heavy aggregate picks the cheapest-x corner outright.
    /// assert_eq!(game.weighted_sum(0.9).unwrap().point, CostPoint::new(1.0, 7.0));
    /// // The balanced aggregate lands on the knee.
    /// assert_eq!(game.weighted_sum(0.5).unwrap().point, CostPoint::new(3.0, 3.0));
    /// ```
    pub fn weighted_sum(&self, w: f64) -> Result<Bargain, GameError> {
        if !(w.is_finite() && (0.0..=1.0).contains(&w)) {
            return Err(GameError::InvalidWeight { weight: w });
        }
        let min_x = self
            .feasible
            .iter()
            .map(|p| p.x)
            .fold(f64::INFINITY, f64::min);
        let max_x = self
            .feasible
            .iter()
            .map(|p| p.x)
            .fold(f64::NEG_INFINITY, f64::max);
        let min_y = self
            .feasible
            .iter()
            .map(|p| p.y)
            .fold(f64::INFINITY, f64::min);
        let max_y = self
            .feasible
            .iter()
            .map(|p| p.y)
            .fold(f64::NEG_INFINITY, f64::max);
        let span_x = (max_x - min_x).max(f64::MIN_POSITIVE);
        let span_y = (max_y - min_y).max(f64::MIN_POSITIVE);
        // argmax of the negated scalarization keeps the earliest-index
        // tie-break shared with the bargaining concepts.
        self.argmax(|p| -(w * (p.x - min_x) / span_x + (1.0 - w) * (p.y - min_y) / span_y))
    }

    fn argmax<F: Fn(&CostPoint) -> f64>(&self, score: F) -> Result<Bargain, GameError> {
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in self.feasible.iter().enumerate() {
            let s = score(p);
            if s == f64::NEG_INFINITY {
                continue;
            }
            // Strict improvement keeps the earliest index on ties.
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((i, s));
            }
        }
        match best {
            Some((index, _)) => Ok(Bargain {
                point: self.feasible[index],
                index,
                nash_product: self.feasible[index].nash_product(self.disagreement),
            }),
            None => Err(GameError::NoGainRegion),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symmetric_game() -> BargainingProblem {
        BargainingProblem::new(
            vec![
                CostPoint::new(1.0, 7.0),
                CostPoint::new(2.0, 4.0),
                CostPoint::new(3.0, 3.0),
                CostPoint::new(4.0, 2.0),
                CostPoint::new(7.0, 1.0),
            ],
            CostPoint::new(8.0, 8.0),
        )
        .unwrap()
    }

    #[test]
    fn nash_maximizes_gain_product() {
        let game = symmetric_game();
        let nash = game.nash().unwrap();
        // Products: 7*1=7, 6*4=24, 5*5=25, 4*6=24, 1*7=7.
        assert_eq!(nash.point, CostPoint::new(3.0, 3.0));
        assert_eq!(nash.nash_product, 25.0);
    }

    #[test]
    fn symmetric_game_gives_equal_gains_under_all_concepts() {
        let game = symmetric_game();
        for b in [
            game.nash().unwrap(),
            game.kalai_smorodinsky().unwrap(),
            game.egalitarian().unwrap(),
        ] {
            let (gx, gy) = b.point.gains_from(game.disagreement());
            assert_eq!(gx, gy, "symmetric game must yield symmetric gains");
        }
    }

    #[test]
    fn concepts_diverge_on_asymmetric_ideal_points() {
        // Player y can gain much more than player x; KS normalizes by
        // ideal gains, Nash does not.
        let game = BargainingProblem::new(
            vec![
                CostPoint::new(9.0, 2.0),
                CostPoint::new(9.5, 1.0),
                CostPoint::new(8.0, 6.0),
            ],
            CostPoint::new(10.0, 10.0),
        )
        .unwrap();
        let nash = game.nash().unwrap();
        let ks = game.kalai_smorodinsky().unwrap();
        // Nash products: 1*8=8, 0.5*9=4.5, 2*4=8 -> tie 8 breaks to
        // index 0.
        assert_eq!(nash.point, CostPoint::new(9.0, 2.0));
        // KS ideal = (8, 1), spans = (2, 9): min ratios are
        // (0.5, 8/9)->0.5, (0.25,1)->0.25, (1, 4/9)->0.444...
        assert_eq!(ks.point, CostPoint::new(9.0, 2.0));
    }

    #[test]
    fn no_gain_region_is_detected() {
        let game = BargainingProblem::new(
            vec![CostPoint::new(5.0, 1.0), CostPoint::new(1.0, 5.0)],
            CostPoint::new(2.0, 2.0),
        )
        .unwrap();
        assert!(!game.has_gain_region());
        assert_eq!(game.nash().unwrap_err(), GameError::NoGainRegion);
        assert_eq!(
            game.kalai_smorodinsky().unwrap_err(),
            GameError::NoGainRegion
        );
        assert_eq!(game.egalitarian().unwrap_err(), GameError::NoGainRegion);
    }

    #[test]
    fn construction_validates_inputs() {
        assert_eq!(
            BargainingProblem::new(vec![], CostPoint::new(0.0, 0.0)).unwrap_err(),
            GameError::EmptyFeasibleSet
        );
        assert_eq!(
            BargainingProblem::new(
                vec![CostPoint::new(f64::NAN, 0.0)],
                CostPoint::new(0.0, 0.0)
            )
            .unwrap_err(),
            GameError::EmptyFeasibleSet
        );
        assert_eq!(
            BargainingProblem::new(
                vec![CostPoint::new(0.0, 0.0)],
                CostPoint::new(f64::INFINITY, 0.0)
            )
            .unwrap_err(),
            GameError::NonFiniteDisagreement
        );
    }

    #[test]
    fn tie_breaks_are_deterministic() {
        let game = BargainingProblem::new(
            vec![CostPoint::new(2.0, 3.0), CostPoint::new(3.0, 2.0)],
            CostPoint::new(5.0, 5.0),
        )
        .unwrap();
        // Equal products (3*2 = 2*3): first index wins.
        assert_eq!(game.nash().unwrap().index, 0);
    }
}
