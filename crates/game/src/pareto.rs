//! Pareto frontiers and lower-left convex hulls of cost-point clouds.

use crate::point::CostPoint;

/// Returns the Pareto frontier (for minimization in both coordinates) of
/// `points`, sorted by increasing `x`.
///
/// Non-finite points are discarded. Duplicates of a frontier point are
/// kept once.
///
/// # Examples
///
/// ```
/// use edmac_game::{pareto_filter, CostPoint};
///
/// let cloud = vec![
///     CostPoint::new(1.0, 5.0),
///     CostPoint::new(2.0, 6.0), // dominated by (1,5)
///     CostPoint::new(3.0, 2.0),
/// ];
/// let frontier = pareto_filter(&cloud);
/// assert_eq!(frontier.len(), 2);
/// assert_eq!(frontier[0], CostPoint::new(1.0, 5.0));
/// ```
pub fn pareto_filter(points: &[CostPoint]) -> Vec<CostPoint> {
    let mut sorted: Vec<CostPoint> = points
        .iter()
        .copied()
        .filter(CostPoint::is_finite)
        .collect();
    // Sort by x ascending, then y ascending so the first of equal-x
    // points is the best.
    sorted.sort_by(|a, b| {
        (a.x, a.y)
            .partial_cmp(&(b.x, b.y))
            .expect("non-finite points filtered above")
    });
    let mut frontier: Vec<CostPoint> = Vec::new();
    let mut best_y = f64::INFINITY;
    for p in sorted {
        if p.y < best_y {
            // Drop a previous frontier point with identical x but worse y
            // is impossible (sorted by y within x); just check dedup.
            if frontier.last().is_some_and(|last| last.x == p.x) {
                continue;
            }
            frontier.push(p);
            best_y = p.y;
        }
    }
    frontier
}

/// Returns the lower-left convex hull of `points`: the convex envelope
/// of the Pareto frontier, sorted by increasing `x`.
///
/// The Nash Bargaining Solution is defined on a *convex* feasible set;
/// for a sampled frontier the hull is the natural convexification (mixed
/// strategies between sampled operating points).
pub fn lower_left_hull(points: &[CostPoint]) -> Vec<CostPoint> {
    let frontier = pareto_filter(points);
    if frontier.len() <= 2 {
        return frontier;
    }
    // Monotone-chain lower hull over points already sorted by x
    // ascending (y is strictly decreasing along a Pareto frontier).
    let mut hull: Vec<CostPoint> = Vec::with_capacity(frontier.len());
    for p in frontier {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            // Keep b only if the path a -> b -> p turns left
            // (cross > 0): that is the convex "valley" shape of a lower
            // hull. A right turn means b sits above segment a-p.
            let cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
            if cross <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_of_empty_or_nonfinite_is_empty() {
        assert!(pareto_filter(&[]).is_empty());
        assert!(pareto_filter(&[CostPoint::new(f64::NAN, 1.0)]).is_empty());
    }

    #[test]
    fn frontier_is_sorted_and_strictly_tradeoff() {
        let cloud = vec![
            CostPoint::new(5.0, 1.0),
            CostPoint::new(1.0, 5.0),
            CostPoint::new(3.0, 3.0),
            CostPoint::new(4.0, 4.0), // dominated
            CostPoint::new(2.0, 6.0), // dominated
        ];
        let f = pareto_filter(&cloud);
        assert_eq!(
            f,
            vec![
                CostPoint::new(1.0, 5.0),
                CostPoint::new(3.0, 3.0),
                CostPoint::new(5.0, 1.0)
            ]
        );
        for w in f.windows(2) {
            assert!(w[0].x < w[1].x && w[0].y > w[1].y);
        }
    }

    #[test]
    fn duplicate_points_collapse() {
        let cloud = vec![CostPoint::new(1.0, 1.0); 5];
        assert_eq!(pareto_filter(&cloud).len(), 1);
    }

    #[test]
    fn equal_x_keeps_best_y() {
        let cloud = vec![CostPoint::new(1.0, 3.0), CostPoint::new(1.0, 2.0)];
        assert_eq!(pareto_filter(&cloud), vec![CostPoint::new(1.0, 2.0)]);
    }

    #[test]
    fn hull_drops_non_convex_knee() {
        // (2, 4.5) is Pareto-optimal but above the segment (1,5)-(5,1).
        let cloud = vec![
            CostPoint::new(1.0, 5.0),
            CostPoint::new(2.0, 4.5),
            CostPoint::new(5.0, 1.0),
        ];
        let hull = lower_left_hull(&cloud);
        assert_eq!(
            hull,
            vec![CostPoint::new(1.0, 5.0), CostPoint::new(5.0, 1.0)]
        );
    }

    #[test]
    fn hull_keeps_convex_knee() {
        let cloud = vec![
            CostPoint::new(1.0, 5.0),
            CostPoint::new(2.0, 2.0), // well below the segment: kept
            CostPoint::new(5.0, 1.0),
        ];
        let hull = lower_left_hull(&cloud);
        assert_eq!(hull.len(), 3);
    }

    #[test]
    fn hull_of_two_points_is_identity() {
        let cloud = vec![CostPoint::new(1.0, 2.0), CostPoint::new(2.0, 1.0)];
        assert_eq!(lower_left_hull(&cloud), pareto_filter(&cloud));
    }
}
