//! Asymmetric (weighted) Nash bargaining.
//!
//! The paper's game is symmetric: both metrics carry equal bargaining
//! power, which is what makes its solution proportionally fair. The
//! natural generalization — standard in the bargaining literature —
//! maximizes a *weighted* product of gains,
//! `(v₁ − c₁)^α · (v₂ − c₂)^(1−α)`, where `α ∈ (0, 1)` is the first
//! player's bargaining power. An application that cares more about
//! lifetime than latency sets `α > 1/2` for the energy player and the
//! whole framework carries through; `α = 1/2` recovers the paper's
//! solution exactly.

use crate::error::GameError;
use crate::point::CostPoint;
use crate::problem::{Bargain, BargainingProblem};

/// A bargaining-power split between the two players.
///
/// # Examples
///
/// ```
/// use edmac_game::BargainingPower;
///
/// let even = BargainingPower::symmetric();
/// assert_eq!(even.first(), 0.5);
/// let lifetime_first = BargainingPower::new(0.8).unwrap();
/// assert!((lifetime_first.second() - 0.2).abs() < 1e-12);
/// assert!(BargainingPower::new(0.0).is_none(), "degenerate powers are rejected");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BargainingPower(f64);

impl BargainingPower {
    /// Creates a power split giving the first player weight `alpha`
    /// (and the second `1 − alpha`). Returns `None` unless
    /// `0 < alpha < 1` — at the endpoints the "game" is a dictatorship
    /// and the single-objective problems (P1)/(P2) already answer it.
    pub fn new(alpha: f64) -> Option<BargainingPower> {
        (alpha.is_finite() && 0.0 < alpha && alpha < 1.0).then_some(BargainingPower(alpha))
    }

    /// The paper's case: both players weigh 1/2.
    pub fn symmetric() -> BargainingPower {
        BargainingPower(0.5)
    }

    /// The first (energy) player's weight.
    pub fn first(&self) -> f64 {
        self.0
    }

    /// The second (latency) player's weight.
    pub fn second(&self) -> f64 {
        1.0 - self.0
    }
}

impl Default for BargainingPower {
    fn default() -> BargainingPower {
        BargainingPower::symmetric()
    }
}

/// The weighted Nash product of gains at `point` relative to `v`.
///
/// `-inf` when either player fails to gain (and for double losses).
pub fn weighted_nash_product(point: CostPoint, v: CostPoint, power: BargainingPower) -> f64 {
    let (gx, gy) = point.gains_from(v);
    if gx <= 0.0 || gy <= 0.0 {
        return f64::NEG_INFINITY;
    }
    // Work in logs: α·ln gx + (1−α)·ln gy is monotone in the product
    // and immune to overflow on extreme gains.
    power.first() * gx.ln() + power.second() * gy.ln()
}

impl BargainingProblem {
    /// The **weighted Nash Bargaining Solution**: the outcome maximizing
    /// `(v₁−c₁)^α (v₂−c₂)^(1−α)` among outcomes strictly improving on
    /// the disagreement point. [`BargainingProblem::nash`] is the
    /// `α = 1/2` special case (the argmax coincides; the reported
    /// `nash_product` field stays the unweighted product for
    /// comparability).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::NoGainRegion`] if no outcome strictly
    /// improves on the disagreement point for both players.
    ///
    /// # Examples
    ///
    /// ```
    /// use edmac_game::{BargainingPower, BargainingProblem, CostPoint};
    ///
    /// let game = BargainingProblem::new(
    ///     vec![CostPoint::new(1.0, 7.0), CostPoint::new(4.0, 4.0), CostPoint::new(7.0, 1.0)],
    ///     CostPoint::new(8.0, 8.0),
    /// ).unwrap();
    /// // Symmetric power picks the balanced point...
    /// let mid = game.nash_weighted(BargainingPower::symmetric()).unwrap();
    /// assert_eq!(mid.point, CostPoint::new(4.0, 4.0));
    /// // ...a 0.9-weight first player drags the agreement its way.
    /// let skewed = game.nash_weighted(BargainingPower::new(0.9).unwrap()).unwrap();
    /// assert_eq!(skewed.point, CostPoint::new(1.0, 7.0));
    /// ```
    pub fn nash_weighted(&self, power: BargainingPower) -> Result<Bargain, GameError> {
        let v = self.disagreement();
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in self.feasible().iter().enumerate() {
            let s = weighted_nash_product(*p, v, power);
            if s == f64::NEG_INFINITY {
                continue;
            }
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((i, s));
            }
        }
        match best {
            Some((index, _)) => Ok(Bargain {
                point: self.feasible()[index],
                index,
                nash_product: self.feasible()[index].nash_product(v),
            }),
            None => Err(GameError::NoGainRegion),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game() -> BargainingProblem {
        BargainingProblem::new(
            vec![
                CostPoint::new(1.0, 7.0),
                CostPoint::new(2.0, 5.0),
                CostPoint::new(3.5, 3.5),
                CostPoint::new(5.0, 2.0),
                CostPoint::new(7.0, 1.0),
            ],
            CostPoint::new(8.0, 8.0),
        )
        .unwrap()
    }

    #[test]
    fn symmetric_weight_recovers_the_nash_solution() {
        let g = game();
        let plain = g.nash().unwrap();
        let weighted = g.nash_weighted(BargainingPower::symmetric()).unwrap();
        assert_eq!(plain.point, weighted.point);
        assert_eq!(plain.index, weighted.index);
    }

    #[test]
    fn weight_moves_the_agreement_monotonically() {
        // Higher first-player (x-cost) power must never *raise* the
        // chosen x cost.
        let g = game();
        let mut last_x = f64::INFINITY;
        for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let b = g
                .nash_weighted(BargainingPower::new(alpha).unwrap())
                .unwrap();
            assert!(
                b.point.x <= last_x + 1e-12,
                "alpha {alpha}: x {} after {last_x}",
                b.point.x
            );
            last_x = b.point.x;
        }
    }

    #[test]
    fn extreme_weights_pick_near_dictatorial_outcomes() {
        let g = game();
        let x_heavy = g
            .nash_weighted(BargainingPower::new(0.99).unwrap())
            .unwrap();
        assert_eq!(x_heavy.point, CostPoint::new(1.0, 7.0));
        let y_heavy = g
            .nash_weighted(BargainingPower::new(0.01).unwrap())
            .unwrap();
        assert_eq!(y_heavy.point, CostPoint::new(7.0, 1.0));
    }

    #[test]
    fn power_validation() {
        assert!(BargainingPower::new(0.0).is_none());
        assert!(BargainingPower::new(1.0).is_none());
        assert!(BargainingPower::new(-0.2).is_none());
        assert!(BargainingPower::new(f64::NAN).is_none());
        assert_eq!(BargainingPower::default(), BargainingPower::symmetric());
    }

    #[test]
    fn weighted_product_rejects_losses() {
        let v = CostPoint::new(1.0, 1.0);
        let power = BargainingPower::symmetric();
        assert_eq!(
            weighted_nash_product(CostPoint::new(2.0, 0.5), v, power),
            f64::NEG_INFINITY
        );
        assert_eq!(
            weighted_nash_product(CostPoint::new(2.0, 3.0), v, power),
            f64::NEG_INFINITY
        );
        let fine = weighted_nash_product(CostPoint::new(0.5, 0.5), v, power);
        assert!(fine.is_finite());
    }

    #[test]
    fn near_extreme_powers_stay_finite_and_dictatorial() {
        // Powers arbitrarily close to the 0/1 endpoints must neither
        // overflow (log-domain scoring) nor deviate from the
        // corresponding dictatorship's pick.
        let g = game();
        for alpha in [1e-9, 1e-6, 1.0 - 1e-6, 1.0 - 1e-9] {
            let b = g
                .nash_weighted(BargainingPower::new(alpha).unwrap())
                .unwrap();
            assert!(b.point.is_finite(), "alpha {alpha}");
            let expect = if alpha > 0.5 {
                CostPoint::new(1.0, 7.0) // x player dictates
            } else {
                CostPoint::new(7.0, 1.0) // y player dictates
            };
            assert_eq!(b.point, expect, "alpha {alpha}");
        }
    }

    #[test]
    fn degenerate_frontier_collapses_to_the_disagreement_point() {
        // A feasible set that *is* the disagreement point offers no
        // strict gain: every power must report NoGainRegion, matching
        // the symmetric solver (the weighted NBS "coincides with" v
        // only in the sense that there is nothing better than v).
        let v = CostPoint::new(3.0, 3.0);
        let g = BargainingProblem::new(vec![v], v).unwrap();
        for alpha in [0.1, 0.5, 0.9] {
            assert_eq!(
                g.nash_weighted(BargainingPower::new(alpha).unwrap())
                    .unwrap_err(),
                GameError::NoGainRegion,
                "alpha {alpha}"
            );
        }
        // An epsilon-improving point, however, is selected by every
        // power — the gain region is open but non-empty.
        let eps = CostPoint::new(3.0 - 1e-12, 3.0 - 1e-12);
        let g = BargainingProblem::new(vec![v, eps], v).unwrap();
        for alpha in [0.1, 0.5, 0.9] {
            let b = g
                .nash_weighted(BargainingPower::new(alpha).unwrap())
                .unwrap();
            assert_eq!(b.point, eps, "alpha {alpha}");
        }
    }

    #[test]
    fn half_power_is_consistent_with_the_symmetric_solver_everywhere() {
        // Sweep a family of skewed frontiers: at power 0.5 the weighted
        // argmax must agree with `nash()` on point, index, and product.
        for k in 1..=20 {
            let scale = k as f64;
            let feasible = vec![
                CostPoint::new(0.5 * scale, 9.0),
                CostPoint::new(1.0 * scale, 6.0),
                CostPoint::new(2.0 * scale, 4.0),
                CostPoint::new(4.0 * scale, 2.5),
                CostPoint::new(8.0 * scale, 1.5),
            ];
            let g = BargainingProblem::new(feasible, CostPoint::new(10.0 * scale, 10.0)).unwrap();
            let plain = g.nash().unwrap();
            let weighted = g.nash_weighted(BargainingPower::symmetric()).unwrap();
            assert_eq!(plain.index, weighted.index, "scale {scale}");
            assert_eq!(plain.point, weighted.point, "scale {scale}");
            assert_eq!(plain.nash_product, weighted.nash_product, "scale {scale}");
        }
    }

    #[test]
    fn no_gain_region_is_reported() {
        let g = BargainingProblem::new(vec![CostPoint::new(9.0, 1.0)], CostPoint::new(5.0, 5.0))
            .unwrap();
        assert_eq!(
            g.nash_weighted(BargainingPower::symmetric()).unwrap_err(),
            GameError::NoGainRegion
        );
    }
}
