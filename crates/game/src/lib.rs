//! Two-player cooperative bargaining over *cost* outcomes.
//!
//! The paper models the energy–delay trade-off as a bargaining game whose
//! players are the two performance metrics themselves: player *Energy*
//! and player *Latency*. Each feasible MAC parameter vector `X` induces a
//! cost pair `(E(X), L(X))`; the disagreement point is
//! `v = (Eworst, Lworst)` — what each player is left with if negotiation
//! breaks down (the paper's (P3)). The **Nash Bargaining Solution** picks
//! the feasible pair maximizing the product of gains
//! `(Eworst − E)·(Lworst − L)`.
//!
//! This crate implements that machinery independently of anything
//! MAC-specific, so it is reusable for any two-cost trade-off:
//!
//! * [`CostPoint`] — a two-cost outcome (both players minimize);
//! * [`pareto_filter`] — the Pareto frontier of a sampled outcome set;
//! * [`BargainingProblem`] — a sampled feasible set plus disagreement
//!   point, with five solution concepts: [`BargainingProblem::nash`],
//!   [`BargainingProblem::nash_weighted`],
//!   [`BargainingProblem::kalai_smorodinsky`],
//!   [`BargainingProblem::egalitarian`], and the non-strategic
//!   [`BargainingProblem::weighted_sum`] aggregate;
//! * [`SolutionConcept`] — the object-safe interface over all of them
//!   ([`standard_concepts`] is the study's fixed panel);
//! * [`nash_continuous`] — the continuous (P4) solver: maximize
//!   `log(v₁ − c₁(x)) + log(v₂ − c₂(x))` over a parameter box via the
//!   interior-point method of `edmac-optim`;
//! * [`proportional_ratios`] — the proportional-fairness identity the
//!   paper proves for its choice of disagreement point;
//! * [`axioms`] — executable checks of the four Nash axioms, used by the
//!   property-test suite.
//!
//! # Examples
//!
//! ```
//! use edmac_game::{BargainingProblem, CostPoint};
//!
//! let feasible = vec![
//!     CostPoint::new(1.0, 9.0),
//!     CostPoint::new(3.0, 3.0), // balanced: gain product (9-3)(9-3)=36
//!     CostPoint::new(9.0, 1.0),
//! ];
//! let v = CostPoint::new(9.0, 9.0);
//! let game = BargainingProblem::new(feasible, v).unwrap();
//! assert_eq!(game.nash().unwrap().point, CostPoint::new(3.0, 3.0));
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod axioms;
mod concept;
mod continuous;
mod error;
mod fairness;
mod pareto;
mod point;
mod problem;
mod weighted;

pub use concept::{
    standard_concepts, Egalitarian, KalaiSmorodinsky, Nash, SolutionConcept, WeightedNash,
    WeightedSum,
};
pub use continuous::{nash_continuous, ContinuousBargain};
pub use error::GameError;
pub use fairness::proportional_ratios;
pub use pareto::{lower_left_hull, pareto_filter};
pub use point::CostPoint;
pub use problem::{Bargain, BargainingProblem};
pub use weighted::{weighted_nash_product, BargainingPower};
