//! Two-cost outcome points.

/// An outcome of the game: a pair of costs, one per player, both to be
/// minimized.
///
/// In the paper's instantiation `x` is the system energy `E` (joules per
/// epoch at the bottleneck node) and `y` the worst end-to-end latency
/// `L` (seconds); the crate is agnostic to the interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostPoint {
    /// First player's cost (energy, in the paper).
    pub x: f64,
    /// Second player's cost (latency, in the paper).
    pub y: f64,
}

impl CostPoint {
    /// Creates a cost point.
    pub const fn new(x: f64, y: f64) -> CostPoint {
        CostPoint { x, y }
    }

    /// Returns `true` if both costs are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Pareto dominance for costs: `self` dominates `other` if it is no
    /// worse in both coordinates and strictly better in at least one.
    ///
    /// # Examples
    ///
    /// ```
    /// use edmac_game::CostPoint;
    ///
    /// let a = CostPoint::new(1.0, 2.0);
    /// let b = CostPoint::new(1.0, 3.0);
    /// assert!(a.dominates(b));
    /// assert!(!b.dominates(a));
    /// assert!(!a.dominates(a)); // strictness
    /// ```
    pub fn dominates(&self, other: CostPoint) -> bool {
        self.x <= other.x && self.y <= other.y && (self.x < other.x || self.y < other.y)
    }

    /// Returns `true` if `self` is strictly better than `other` in both
    /// coordinates (the paper's `s > v` condition, stated for costs).
    pub fn strictly_dominates(&self, other: CostPoint) -> bool {
        self.x < other.x && self.y < other.y
    }

    /// The gains each player realizes at `self` relative to the
    /// disagreement point `v` (positive when `self` improves on `v`).
    pub fn gains_from(&self, v: CostPoint) -> (f64, f64) {
        (v.x - self.x, v.y - self.y)
    }

    /// The Nash product of gains relative to `v`; negative if either
    /// player loses.
    ///
    /// Points that are worse than `v` in *both* coordinates would get a
    /// positive product from naive multiplication; they are mapped to
    /// `-inf` so maximization can never select them.
    pub fn nash_product(&self, v: CostPoint) -> f64 {
        let (gx, gy) = self.gains_from(v);
        if gx < 0.0 && gy < 0.0 {
            f64::NEG_INFINITY
        } else {
            gx * gy
        }
    }
}

impl std::fmt::Display for CostPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::CostPoint;

    #[test]
    fn dominance_cases() {
        let a = CostPoint::new(1.0, 1.0);
        let b = CostPoint::new(2.0, 2.0);
        let c = CostPoint::new(0.5, 3.0);
        assert!(a.dominates(b));
        assert!(a.strictly_dominates(b));
        assert!(!a.dominates(c) && !c.dominates(a), "incomparable pair");
        assert!(!a.strictly_dominates(CostPoint::new(1.0, 2.0)));
        assert!(a.dominates(CostPoint::new(1.0, 2.0)));
    }

    #[test]
    fn gains_and_product() {
        let v = CostPoint::new(10.0, 8.0);
        let p = CostPoint::new(4.0, 5.0);
        assert_eq!(p.gains_from(v), (6.0, 3.0));
        assert_eq!(p.nash_product(v), 18.0);
    }

    #[test]
    fn product_is_negative_when_one_player_loses() {
        let v = CostPoint::new(1.0, 1.0);
        let p = CostPoint::new(2.0, 0.5); // x-player loses
        assert!(p.nash_product(v) < 0.0);
    }

    #[test]
    fn product_rejects_double_loss() {
        let v = CostPoint::new(1.0, 1.0);
        let p = CostPoint::new(2.0, 3.0); // both lose: naive product +2
        assert_eq!(p.nash_product(v), f64::NEG_INFINITY);
    }

    #[test]
    fn finiteness_check() {
        assert!(CostPoint::new(0.0, 0.0).is_finite());
        assert!(!CostPoint::new(f64::NAN, 0.0).is_finite());
        assert!(!CostPoint::new(0.0, f64::INFINITY).is_finite());
    }
}
