//! The proportional-fairness identity of the paper's solution.

use crate::point::CostPoint;

/// Computes the two proportional-fairness ratios the paper's closing
/// equation asserts are equal at the Nash solution when the
/// disagreement point is `(Eworst, Lworst)`:
///
/// ```text
/// (E* − Eworst) / (Ebest − Eworst)  =  (L* − Lworst) / (Lbest − Lworst)
/// ```
///
/// `best` is `(Ebest, Lbest)` — each player's single-objective optimum —
/// and `worst` is `(Eworst, Lworst)`, the disagreement point. Returns
/// `(ratio_x, ratio_y)`; both lie in `[0, 1]` when the solution sits
/// between the two anchors, and their equality (up to model curvature)
/// is what makes the agreement *proportionally fair*: each player
/// concedes the same fraction of its attainable improvement.
///
/// # Examples
///
/// ```
/// use edmac_game::{proportional_ratios, CostPoint};
///
/// let best = CostPoint::new(1.0, 1.0);
/// let worst = CostPoint::new(5.0, 9.0);
/// let star = CostPoint::new(3.0, 5.0); // halfway for both players
/// let (rx, ry) = proportional_ratios(star, best, worst);
/// assert_eq!(rx, 0.5);
/// assert_eq!(ry, 0.5);
/// ```
pub fn proportional_ratios(star: CostPoint, best: CostPoint, worst: CostPoint) -> (f64, f64) {
    let rx = (star.x - worst.x) / (best.x - worst.x);
    let ry = (star.y - worst.y) / (best.y - worst.y);
    (rx, ry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_map_to_zero_and_one() {
        let best = CostPoint::new(2.0, 3.0);
        let worst = CostPoint::new(10.0, 30.0);
        assert_eq!(proportional_ratios(worst, best, worst), (0.0, 0.0));
        assert_eq!(proportional_ratios(best, best, worst), (1.0, 1.0));
    }

    #[test]
    fn exact_nash_on_linear_frontier_is_proportionally_fair() {
        // Frontier x + y = 1 with v = (1, 1): NBS at (0.5, 0.5);
        // best points are (0, 1) for x and (1, 0) for y.
        let star = CostPoint::new(0.5, 0.5);
        let best = CostPoint::new(0.0, 0.0);
        let worst = CostPoint::new(1.0, 1.0);
        let (rx, ry) = proportional_ratios(star, best, worst);
        assert!((rx - ry).abs() < 1e-12);
        assert!((rx - 0.5).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_point_yields_unequal_ratios() {
        let best = CostPoint::new(0.0, 0.0);
        let worst = CostPoint::new(1.0, 1.0);
        let lopsided = CostPoint::new(0.1, 0.9);
        let (rx, ry) = proportional_ratios(lopsided, best, worst);
        assert!(rx > ry, "a point favoring player x must show it");
    }
}
