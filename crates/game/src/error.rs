//! Error type for bargaining problems.

/// Errors from constructing or solving bargaining problems.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GameError {
    /// The feasible set was empty after filtering non-finite points.
    EmptyFeasibleSet,
    /// No feasible point strictly improves on the disagreement point for
    /// both players, so the bargaining game has no agreement region
    /// (the paper's existence condition `∃ s ∈ S: s > v` fails).
    NoGainRegion,
    /// The disagreement point must be finite.
    NonFiniteDisagreement,
    /// A scalarization weight was outside `[0, 1]` (or non-finite).
    InvalidWeight {
        /// The rejected weight.
        weight: f64,
    },
    /// The continuous solver failed; carries the underlying cause.
    Solver(edmac_optim::OptimError),
}

impl std::fmt::Display for GameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GameError::EmptyFeasibleSet => write!(f, "feasible set is empty"),
            GameError::NoGainRegion => write!(
                f,
                "no feasible point strictly improves on the disagreement point for both players"
            ),
            GameError::NonFiniteDisagreement => {
                write!(f, "disagreement point must be finite")
            }
            GameError::InvalidWeight { weight } => {
                write!(f, "scalarization weight must be in [0, 1], got {weight}")
            }
            GameError::Solver(e) => write!(f, "continuous bargaining solver failed: {e}"),
        }
    }
}

impl std::error::Error for GameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GameError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<edmac_optim::OptimError> for GameError {
    fn from(e: edmac_optim::OptimError) -> GameError {
        GameError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::GameError;
    use std::error::Error;

    #[test]
    fn solver_errors_chain_their_source() {
        let e = GameError::from(edmac_optim::OptimError::Infeasible);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("no feasible point"));
    }

    #[test]
    fn display_is_lowercase_and_specific() {
        assert_eq!(
            GameError::EmptyFeasibleSet.to_string(),
            "feasible set is empty"
        );
        assert!(GameError::NoGainRegion.to_string().contains("disagreement"));
    }
}
