//! Executable checks of the Nash bargaining axioms.
//!
//! The paper cites the four axioms — Pareto optimality, symmetry, scale
//! independence, independence of irrelevant alternatives — as the reason
//! the Nash solution is *the* principled compromise. This module makes
//! each axiom a checkable predicate over a concrete
//! [`BargainingProblem`], so the property-test suite (and any downstream
//! user with a custom solution concept) can verify them on sampled
//! games rather than take them on faith.

use crate::error::GameError;
use crate::point::CostPoint;
use crate::problem::{Bargain, BargainingProblem};

/// Checks **Pareto optimality**: no feasible outcome dominates the
/// selected one.
pub fn is_pareto_optimal(solution: &Bargain, problem: &BargainingProblem) -> bool {
    problem
        .feasible()
        .iter()
        .all(|p| !p.dominates(solution.point))
}

/// Checks **symmetry** in its anonymity form: relabeling the players
/// (swapping both coordinates of every outcome and of `v`) must yield
/// the relabeled solution.
///
/// The textbook statement — a symmetric game awards equal gains —
/// presumes a *convex* feasible set; on a sampled set the equal-gain
/// point typically does not exist (e.g. `{(0,9),(9,0)}`). Anonymity is
/// the form that is exactly verifiable on samples and implies the
/// textbook form in the convex limit.
///
/// # Errors
///
/// Propagates solver errors from either game.
pub fn check_symmetry(problem: &BargainingProblem) -> Result<bool, GameError> {
    let swap = |p: CostPoint| CostPoint::new(p.y, p.x);
    let original = problem.nash()?;
    let swapped_problem = BargainingProblem::new(
        problem.feasible().iter().map(|&p| swap(p)).collect(),
        swap(problem.disagreement()),
    )?;
    let swapped = swapped_problem.nash()?;
    let expected = swap(original.point);
    Ok(swapped.point == expected)
}

/// Checks **scale independence** (covariance under positive affine
/// rescaling of each player's cost): solving the transformed game
/// selects the transform of the original solution.
///
/// `scale` and `shift` are applied per coordinate:
/// `x' = scale.0 * x + shift.0`, `y' = scale.1 * y + shift.1` with
/// positive scales.
///
/// # Errors
///
/// Propagates solver errors from the transformed game.
pub fn check_scale_independence(
    problem: &BargainingProblem,
    scale: (f64, f64),
    shift: (f64, f64),
) -> Result<bool, GameError> {
    assert!(scale.0 > 0.0 && scale.1 > 0.0, "scales must be positive");
    let transform = |p: CostPoint| CostPoint::new(scale.0 * p.x + shift.0, scale.1 * p.y + shift.1);
    let original = problem.nash()?;
    let transformed_problem = BargainingProblem::new(
        problem.feasible().iter().map(|&p| transform(p)).collect(),
        transform(problem.disagreement()),
    )?;
    let transformed = transformed_problem.nash()?;
    let expected = transform(original.point);
    let tol = 1e-9 * (1.0 + expected.x.abs() + expected.y.abs());
    Ok((transformed.point.x - expected.x).abs() <= tol
        && (transformed.point.y - expected.y).abs() <= tol)
}

/// Checks **independence of irrelevant alternatives**: removing
/// non-selected outcomes (while keeping the selected one) must not
/// change the solution.
///
/// `keep` selects which non-solution outcomes survive; the solution
/// outcome is always retained.
///
/// # Errors
///
/// Propagates solver errors from the reduced game.
pub fn check_iia<F: Fn(usize, CostPoint) -> bool>(
    problem: &BargainingProblem,
    keep: F,
) -> Result<bool, GameError> {
    let original = problem.nash()?;
    let reduced: Vec<CostPoint> = problem
        .feasible()
        .iter()
        .enumerate()
        .filter(|&(i, p)| i == original.index || keep(i, *p))
        .map(|(_, &p)| p)
        .collect();
    let reduced_problem = BargainingProblem::new(reduced, problem.disagreement())?;
    let reduced_solution = reduced_problem.nash()?;
    Ok(reduced_solution.point == original.point)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game() -> BargainingProblem {
        BargainingProblem::new(
            vec![
                CostPoint::new(1.0, 7.0),
                CostPoint::new(3.0, 3.0),
                CostPoint::new(7.0, 1.0),
                CostPoint::new(6.0, 6.0), // dominated
            ],
            CostPoint::new(8.0, 8.0),
        )
        .unwrap()
    }

    #[test]
    fn nash_is_pareto_optimal_here() {
        let g = game();
        let s = g.nash().unwrap();
        assert!(is_pareto_optimal(&s, &g));
    }

    #[test]
    fn dominated_pick_fails_pareto_check() {
        let g = game();
        let fake = Bargain {
            point: CostPoint::new(6.0, 6.0),
            index: 3,
            nash_product: 4.0,
        };
        assert!(!is_pareto_optimal(&fake, &g));
    }

    #[test]
    fn symmetry_holds_on_symmetric_game() {
        let g = game(); // {.., (1,7),(7,1),(3,3),(6,6)} is swap-closed
        assert!(check_symmetry(&g).unwrap());
    }

    #[test]
    fn symmetry_holds_on_asymmetric_games_too() {
        // Anonymity is not restricted to symmetric games: relabeling any
        // game must relabel its solution.
        let g = BargainingProblem::new(
            vec![CostPoint::new(1.0, 2.0), CostPoint::new(0.5, 3.0)],
            CostPoint::new(4.0, 4.0),
        )
        .unwrap();
        assert!(check_symmetry(&g).unwrap());
    }

    #[test]
    fn scale_independence_holds() {
        let g = game();
        assert!(check_scale_independence(&g, (2.0, 0.5), (1.0, -0.25)).unwrap());
    }

    #[test]
    fn iia_holds_when_removing_losers() {
        let g = game();
        // Drop everything except extreme points and the solution.
        assert!(check_iia(&g, |_, p| p.x <= 1.0 || p.y <= 1.0).unwrap());
        // Drop everything but the solution.
        assert!(check_iia(&g, |_, _| false).unwrap());
    }
}
