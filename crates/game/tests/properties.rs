//! Property-based verification of the Nash axioms on random games.

use edmac_game::{axioms, pareto_filter, BargainingProblem, CostPoint};
use proptest::prelude::*;

/// Random cost clouds inside (0, 10)^2 with a disagreement point that is
/// beaten by at least one sample (we place v at the cloud's max corner,
/// nudged up, so a gain region always exists).
fn cloud() -> impl Strategy<Value = (Vec<CostPoint>, CostPoint)> {
    prop::collection::vec((0.01..10.0f64, 0.01..10.0f64), 2..40).prop_map(|pts| {
        let points: Vec<CostPoint> = pts.iter().map(|&(x, y)| CostPoint::new(x, y)).collect();
        let vx = points.iter().map(|p| p.x).fold(0.0f64, f64::max) + 0.5;
        let vy = points.iter().map(|p| p.y).fold(0.0f64, f64::max) + 0.5;
        (points, CostPoint::new(vx, vy))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn nash_solution_is_pareto_optimal((points, v) in cloud()) {
        let game = BargainingProblem::new(points, v).unwrap();
        let s = game.nash().unwrap();
        prop_assert!(axioms::is_pareto_optimal(&s, &game));
    }

    #[test]
    fn nash_is_scale_independent(
        (points, v) in cloud(),
        sx in 0.1..5.0f64,
        sy in 0.1..5.0f64,
        tx in -3.0..3.0f64,
        ty in -3.0..3.0f64,
    ) {
        let game = BargainingProblem::new(points, v).unwrap();
        prop_assert!(axioms::check_scale_independence(&game, (sx, sy), (tx, ty)).unwrap());
    }

    #[test]
    fn nash_satisfies_iia_under_random_removal(
        (points, v) in cloud(),
        mask in prop::collection::vec(any::<bool>(), 40),
    ) {
        let game = BargainingProblem::new(points, v).unwrap();
        prop_assert!(
            axioms::check_iia(&game, |i, _| mask.get(i).copied().unwrap_or(false)).unwrap()
        );
    }

    #[test]
    fn nash_is_anonymous_under_player_relabeling((points, v) in cloud()) {
        let game = BargainingProblem::new(points, v).unwrap();
        prop_assert!(axioms::check_symmetry(&game).unwrap());
    }

    #[test]
    fn symmetrized_games_have_symmetric_maximizer_sets((points, v) in cloud()) {
        // On a swap-closed cloud with symmetric v, the chosen point's
        // mirror attains the same Nash product (the convex-set
        // equal-gains statement degrades to this on samples).
        let mut sym = points.clone();
        sym.extend(points.iter().map(|p| CostPoint::new(p.y, p.x)));
        let d = v.x.max(v.y);
        let vv = CostPoint::new(d, d);
        let game = BargainingProblem::new(sym, vv).unwrap();
        let s = game.nash().unwrap();
        let mirror = CostPoint::new(s.point.y, s.point.x);
        prop_assert!((mirror.nash_product(vv) - s.nash_product).abs() <= 1e-9 * (1.0 + s.nash_product.abs()));
    }

    #[test]
    fn solution_concepts_all_pick_pareto_points((points, v) in cloud()) {
        let game = BargainingProblem::new(points, v).unwrap();
        for s in [
            game.nash().unwrap(),
            game.kalai_smorodinsky().unwrap(),
            game.egalitarian().unwrap(),
        ] {
            prop_assert!(axioms::is_pareto_optimal(&s, &game), "concept picked {:?}", s.point);
        }
    }

    #[test]
    fn nash_product_is_maximal_over_feasible((points, v) in cloud()) {
        let game = BargainingProblem::new(points.clone(), v).unwrap();
        let s = game.nash().unwrap();
        for p in &points {
            if p.strictly_dominates(v) {
                prop_assert!(p.nash_product(v) <= s.nash_product + 1e-12);
            }
        }
    }

    #[test]
    fn pareto_filter_is_idempotent_and_complete((points, _v) in cloud()) {
        let f1 = pareto_filter(&points);
        let f2 = pareto_filter(&f1);
        prop_assert_eq!(&f1, &f2, "filtering a frontier must be a no-op");
        // Every original point is dominated-or-equal by some frontier point.
        for p in &points {
            prop_assert!(
                f1.iter().any(|q| q == p || q.dominates(*p)),
                "point {p} escaped the frontier"
            );
        }
    }

    #[test]
    fn egalitarian_gains_are_maximin((points, v) in cloud()) {
        let game = BargainingProblem::new(points.clone(), v).unwrap();
        let s = game.egalitarian().unwrap();
        let (gx, gy) = s.point.gains_from(v);
        let chosen_min = gx.min(gy);
        for p in &points {
            if p.strictly_dominates(v) {
                let (px, py) = p.gains_from(v);
                prop_assert!(px.min(py) <= chosen_min + 1e-12);
            }
        }
    }
}
