//! Energy ([`Joules`]) and power ([`Watts`]).

use crate::time::Seconds;

quantity! {
    /// An amount of energy in joules.
    ///
    /// The paper's player *Energy* bargains over exactly this quantity:
    /// the energy consumed by the most-loaded (bottleneck) node during one
    /// reporting epoch. Budgets in the paper's figures range over
    /// `0.01 J` to `0.06 J`.
    ///
    /// # Examples
    ///
    /// ```
    /// use edmac_units::{Joules, Seconds, Watts};
    ///
    /// let e = Joules::from_milli(141.0);
    /// let p: Watts = e / Seconds::new(10.0);
    /// assert!((p.value() - 0.0141).abs() < 1e-12);
    /// ```
    pub struct Joules("J");
}

quantity! {
    /// Power draw in watts.
    ///
    /// Radio datasheet figures (e.g. the CC2420 listens at ~56.4 mW) enter
    /// the models through this type.
    ///
    /// # Examples
    ///
    /// ```
    /// use edmac_units::{Joules, Seconds, Watts};
    ///
    /// let rx = Watts::from_milli(56.4);
    /// let energy: Joules = rx * Seconds::from_millis(4.0);
    /// assert!((energy.value() - 225.6e-6).abs() < 1e-12);
    /// ```
    pub struct Watts("W");
}

impl Joules {
    /// Creates an energy amount from millijoules.
    #[inline]
    pub const fn from_milli(mj: f64) -> Joules {
        Joules::new(mj / 1_000.0)
    }

    /// Creates an energy amount from microjoules.
    #[inline]
    pub const fn from_micro(uj: f64) -> Joules {
        Joules::new(uj / 1_000_000.0)
    }

    /// Returns the amount expressed in millijoules.
    #[inline]
    pub fn as_milli(self) -> f64 {
        self.value() * 1_000.0
    }
}

impl Watts {
    /// Creates a power draw from milliwatts.
    #[inline]
    pub const fn from_milli(mw: f64) -> Watts {
        Watts::new(mw / 1_000.0)
    }

    /// Creates a power draw from microwatts.
    #[inline]
    pub const fn from_micro(uw: f64) -> Watts {
        Watts::new(uw / 1_000_000.0)
    }

    /// Returns the draw expressed in milliwatts.
    #[inline]
    pub fn as_milli(self) -> f64 {
        self.value() * 1_000.0
    }
}

/// Power sustained for a duration yields energy.
impl std::ops::Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

/// Duration at a power level yields energy.
impl std::ops::Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

/// Energy spread over a duration yields average power.
impl std::ops::Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.value() / rhs.value())
    }
}

/// Energy drawn at a power level lasts for a duration.
impl std::ops::Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::{Joules, Seconds, Watts};

    #[test]
    fn power_time_energy_triangle() {
        let p = Watts::new(0.05);
        let t = Seconds::new(4.0);
        let e = p * t;
        assert!((e.value() - 0.2).abs() < 1e-15);
        assert!(((t * p).value() - 0.2).abs() < 1e-15);
        assert!(((e / t).value() - p.value()).abs() < 1e-15);
        assert!(((e / p).value() - t.value()).abs() < 1e-15);
    }

    #[test]
    fn milli_constructors() {
        assert!((Joules::from_milli(60.0).value() - 0.06).abs() < 1e-15);
        assert!((Watts::from_milli(52.2).value() - 0.0522).abs() < 1e-15);
        assert!((Watts::from_micro(60.0).value() - 60e-6).abs() < 1e-18);
        assert!((Joules::from_micro(5.0).value() - 5e-6).abs() < 1e-18);
    }

    #[test]
    fn as_milli_round_trips() {
        assert!((Joules::from_milli(12.5).as_milli() - 12.5).abs() < 1e-12);
        assert!((Watts::from_milli(1.75).as_milli() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn battery_lifetime_example() {
        // A pair of AA cells ~ 20 kJ; a node drawing 1 mW lasts ~231 days.
        let battery = Joules::new(20_000.0);
        let draw = Watts::from_milli(1.0);
        let lifetime = battery / draw;
        let days = lifetime.value() / 86_400.0;
        assert!((days - 231.48).abs() < 0.01);
    }
}
