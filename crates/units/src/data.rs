//! Frame sizes ([`Bytes`]) and link rates ([`BitsPerSecond`]).

use crate::time::Seconds;

/// A frame or field size in whole bytes.
///
/// Packet formats are specified in bytes, so this is an integer newtype
/// rather than an `f64` quantity; conversion to airtime happens through
/// [`BitsPerSecond::airtime`] or `Bytes / BitsPerSecond`.
///
/// # Examples
///
/// ```
/// use edmac_units::{BitsPerSecond, Bytes};
///
/// let payload = Bytes::new(32) + Bytes::new(18); // payload + header
/// let radio = BitsPerSecond::new(250_000.0);
/// let airtime = payload / radio;
/// assert!((airtime.as_millis() - 1.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u32);

impl Bytes {
    /// The empty size.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size of `n` bytes.
    #[inline]
    pub const fn new(n: u32) -> Bytes {
        Bytes(n)
    }

    /// Returns the size in bytes.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Returns the size in bits.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0 as u64 * 8
    }
}

impl std::ops::Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Bytes {
    type Output = Bytes;
    /// # Panics
    ///
    /// Panics on underflow in debug builds, like integer subtraction.
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl std::ops::Mul<u32> for Bytes {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: u32) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl std::iter::Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl std::fmt::Display for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} B", self.0)
    }
}

quantity! {
    /// A physical-layer link rate in bits per second.
    ///
    /// # Examples
    ///
    /// ```
    /// use edmac_units::{BitsPerSecond, Bytes};
    ///
    /// // IEEE 802.15.4 (CC2420): 250 kbps.
    /// let rate = BitsPerSecond::from_kilo(250.0);
    /// assert_eq!(rate.airtime(Bytes::new(125)).as_millis(), 4.0);
    /// ```
    pub struct BitsPerSecond("bit/s");
}

impl BitsPerSecond {
    /// Creates a rate from kilobits per second.
    #[inline]
    pub const fn from_kilo(kbps: f64) -> BitsPerSecond {
        BitsPerSecond::new(kbps * 1_000.0)
    }

    /// Returns the time taken to serialize `size` onto the link.
    #[inline]
    pub fn airtime(self, size: Bytes) -> Seconds {
        Seconds::new(size.bits() as f64 / self.value())
    }

    /// Returns the time taken to serialize one byte.
    #[inline]
    pub fn byte_time(self) -> Seconds {
        Seconds::new(8.0 / self.value())
    }
}

/// Size over a link rate yields airtime.
impl std::ops::Div<BitsPerSecond> for Bytes {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: BitsPerSecond) -> Seconds {
        rhs.airtime(self)
    }
}

#[cfg(test)]
mod tests {
    use super::{BitsPerSecond, Bytes};

    #[test]
    fn byte_arithmetic() {
        let a = Bytes::new(10);
        let b = Bytes::new(4);
        assert_eq!((a + b).value(), 14);
        assert_eq!((a - b).value(), 6);
        assert_eq!((b * 3).value(), 12);
        let total: Bytes = [a, b, Bytes::new(1)].into_iter().sum();
        assert_eq!(total.value(), 15);
    }

    #[test]
    fn bits_conversion() {
        assert_eq!(Bytes::new(0).bits(), 0);
        assert_eq!(Bytes::new(125).bits(), 1000);
    }

    #[test]
    fn airtime_at_802154_rate() {
        let rate = BitsPerSecond::from_kilo(250.0);
        // 50-byte frame = 400 bits = 1.6 ms at 250 kbps.
        assert!((rate.airtime(Bytes::new(50)).as_millis() - 1.6).abs() < 1e-12);
        assert!((rate.byte_time().as_micros() - 32.0).abs() < 1e-9);
        assert!(((Bytes::new(50) / rate).as_millis() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bytes::new(18).to_string(), "18 B");
        assert_eq!(BitsPerSecond::from_kilo(250.0).to_string(), "250000 bit/s");
    }
}
