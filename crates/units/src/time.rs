//! Time ([`Seconds`]) and event rates ([`Hertz`]).

quantity! {
    /// A span of time in seconds.
    ///
    /// The workspace measures every protocol timing (wake-up intervals,
    /// slot durations, packet airtimes, end-to-end delays) in `Seconds`;
    /// the millisecond/microsecond helpers exist because datasheets and
    /// the paper's figures use those scales.
    ///
    /// # Examples
    ///
    /// ```
    /// use edmac_units::Seconds;
    ///
    /// let wakeup = Seconds::from_millis(125.0);
    /// assert_eq!(wakeup.as_millis(), 125.0);
    /// assert_eq!(wakeup.value(), 0.125);
    /// ```
    pub struct Seconds("s");
}

quantity! {
    /// An event rate in events per second.
    ///
    /// Used for application sampling rates (`Fs` in the paper) and the
    /// per-ring traffic flows `F_out^d`, `F_I^d`, `F_B^d`.
    ///
    /// # Examples
    ///
    /// ```
    /// use edmac_units::{Hertz, Seconds};
    ///
    /// // One reading per minute:
    /// let fs = Hertz::per_interval(Seconds::new(60.0));
    /// // Expected packets in a ten-minute window:
    /// assert!((fs * Seconds::new(600.0) - 10.0).abs() < 1e-12);
    /// ```
    pub struct Hertz("Hz");
}

impl Seconds {
    /// Creates a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: f64) -> Seconds {
        Seconds::new(ms / 1_000.0)
    }

    /// Creates a span from microseconds.
    #[inline]
    pub const fn from_micros(us: f64) -> Seconds {
        Seconds::new(us / 1_000_000.0)
    }

    /// Returns the span expressed in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.value() * 1_000.0
    }

    /// Returns the span expressed in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.value() * 1_000_000.0
    }

    /// Returns the rate whose period is `self`.
    ///
    /// # Panics
    ///
    /// Never panics; a zero span yields an infinite rate, mirroring `f64`
    /// division.
    #[inline]
    pub fn recip(self) -> Hertz {
        Hertz::new(1.0 / self.value())
    }
}

impl Hertz {
    /// Creates the rate of one event per `period`.
    #[inline]
    pub fn per_interval(period: Seconds) -> Hertz {
        period.recip()
    }

    /// Returns the period between events at this rate.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.value())
    }
}

/// Rate × time = expected event count (dimensionless).
impl std::ops::Mul<Seconds> for Hertz {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.value() * rhs.value()
    }
}

/// Time × rate = expected event count (dimensionless).
impl std::ops::Mul<Hertz> for Seconds {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Hertz) -> f64 {
        self.value() * rhs.value()
    }
}

#[cfg(test)]
mod tests {
    use super::{Hertz, Seconds};

    #[test]
    fn milli_and_micro_round_trip() {
        let t = Seconds::from_millis(2.5);
        assert!((t.value() - 0.0025).abs() < 1e-15);
        assert!((t.as_millis() - 2.5).abs() < 1e-12);
        let u = Seconds::from_micros(320.0);
        assert!((u.as_micros() - 320.0).abs() < 1e-9);
    }

    #[test]
    fn recip_and_period_are_inverses() {
        let t = Seconds::new(0.2);
        let f = t.recip();
        assert!((f.value() - 5.0).abs() < 1e-12);
        assert!((f.period().value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rate_times_time_counts_events() {
        let fs = Hertz::new(0.5);
        let window = Seconds::new(8.0);
        assert_eq!(fs * window, 4.0);
        assert_eq!(window * fs, 4.0);
    }

    #[test]
    fn per_interval_matches_recip() {
        let period = Seconds::new(60.0);
        assert_eq!(Hertz::per_interval(period).value(), period.recip().value());
    }
}
