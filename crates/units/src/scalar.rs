//! The `quantity!` macro: shared boilerplate for `f64`-backed newtypes.
//!
//! Each invocation defines a `Copy` newtype with constructors, accessors,
//! same-type additive arithmetic, scalar multiplicative arithmetic, an
//! iterator [`Sum`](std::iter::Sum) impl and a unit-suffixed
//! [`Display`](std::fmt::Display).

/// Defines a physical-quantity newtype over `f64`.
///
/// The macro is internal to the crate; its syntax mirrors a struct
/// declaration followed by the unit suffix used by `Display`:
///
/// ```ignore
/// quantity! {
///     /// docs...
///     pub struct Seconds("s");
/// }
/// ```
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        pub struct $name:ident($unit:literal);
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a quantity from its value in base units.
            #[inline]
            pub const fn new(value: f64) -> $name {
                $name(value)
            }

            /// Returns the value in base units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` (same contract as [`f64::clamp`]).
            #[inline]
            pub fn clamp(self, lo: $name, hi: $name) -> $name {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the value is neither infinite nor NaN.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns `true` if the value is finite and `>= 0`.
            ///
            /// Physical quantities in this workspace are almost always
            /// non-negative; model code uses this to validate inputs.
            #[inline]
            pub fn is_non_negative(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }
        }

        impl std::ops::Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl std::ops::Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl std::ops::Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl std::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl std::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl std::ops::Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl std::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl std::ops::Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// Dividing two like quantities yields their dimensionless ratio.
        impl std::ops::Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> std::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    quantity! {
        /// Test-only quantity.
        pub struct Foo("foo");
    }

    #[test]
    fn additive_arithmetic() {
        let a = Foo::new(2.0);
        let b = Foo::new(0.5);
        assert_eq!((a + b).value(), 2.5);
        assert_eq!((a - b).value(), 1.5);
        assert_eq!((-a).value(), -2.0);
        let mut c = a;
        c += b;
        c -= Foo::new(1.0);
        assert_eq!(c.value(), 1.5);
    }

    #[test]
    fn scalar_arithmetic_and_ratio() {
        let a = Foo::new(2.0);
        assert_eq!((a * 3.0).value(), 6.0);
        assert_eq!((3.0 * a).value(), 6.0);
        assert_eq!((a / 4.0).value(), 0.5);
        assert_eq!(a / Foo::new(0.5), 4.0);
    }

    #[test]
    fn ordering_min_max_clamp() {
        let lo = Foo::new(1.0);
        let hi = Foo::new(3.0);
        assert!(lo < hi);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
        assert_eq!(Foo::new(9.0).clamp(lo, hi), hi);
        assert_eq!(Foo::new(-9.0).clamp(lo, hi), lo);
        assert_eq!(Foo::new(2.0).clamp(lo, hi), Foo::new(2.0));
    }

    #[test]
    fn sum_over_iterators() {
        let parts = [Foo::new(1.0), Foo::new(2.0), Foo::new(3.5)];
        let owned: Foo = parts.iter().copied().sum();
        let borrowed: Foo = parts.iter().sum();
        assert_eq!(owned.value(), 6.5);
        assert_eq!(borrowed.value(), 6.5);
    }

    #[test]
    fn display_includes_unit_and_precision() {
        assert_eq!(Foo::new(1.25).to_string(), "1.25 foo");
        assert_eq!(format!("{:.1}", Foo::new(1.25)), "1.2 foo");
    }

    #[test]
    fn validity_predicates() {
        assert!(Foo::new(1.0).is_non_negative());
        assert!(Foo::ZERO.is_non_negative());
        assert!(!Foo::new(-1.0).is_non_negative());
        assert!(!Foo::new(f64::NAN).is_non_negative());
        assert!(!Foo::new(f64::INFINITY).is_finite());
    }
}
