//! Typed physical quantities for the `edmac` workspace.
//!
//! Energy/latency model code is dominated by unit arithmetic: milliwatts
//! multiplied by milliseconds, packet counts per second, duty-cycle ratios.
//! Getting one conversion wrong silently skews every downstream figure, so
//! this crate wraps each physical dimension in a newtype ([C-NEWTYPE]) and
//! only exposes the dimensionally sound operations:
//!
//! * [`Watts`] `*` [`Seconds`] = [`Joules`]
//! * [`Joules`] `/` [`Seconds`] = [`Watts`], [`Joules`] `/` [`Watts`] = [`Seconds`]
//! * [`Hertz`] `*` [`Seconds`] = dimensionless `f64` (an expected count)
//! * [`Seconds::recip`] = [`Hertz`], [`Hertz::period`] = [`Seconds`]
//! * [`Bytes`] `/` [`BitsPerSecond`] = [`Seconds`] (airtime)
//!
//! All quantities are thin wrappers over `f64` (or `u32` for [`Bytes`]),
//! are `Copy`, ordered, display with their unit suffix, and implement the
//! arithmetic traits for same-type addition/subtraction and scalar
//! multiplication/division.
//!
//! # Examples
//!
//! ```
//! use edmac_units::{Joules, Seconds, Watts};
//!
//! let listen_power = Watts::from_milli(56.4);
//! let poll = Seconds::from_millis(2.5);
//! let per_poll: Joules = listen_power * poll;
//! assert!((per_poll.value() - 141e-6).abs() < 1e-9);
//!
//! // Average power over a 10 s epoch:
//! let avg: Watts = per_poll / Seconds::new(10.0);
//! assert!(avg < listen_power);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs, missing_debug_implementations)]

#[macro_use]
mod scalar;

mod data;
mod energy;
mod time;

pub use data::{BitsPerSecond, Bytes};
pub use energy::{Joules, Watts};
pub use time::{Hertz, Seconds};

/// A dimensionless ratio in `[0, 1]`, used for duty cycles and
/// channel-utilization figures.
///
/// Unlike the physical quantities, `Ratio` validates its range at
/// construction: a duty cycle of 1.3 is always a modelling bug.
///
/// # Examples
///
/// ```
/// use edmac_units::Ratio;
///
/// let duty = Ratio::new(0.02).unwrap();
/// assert_eq!(duty.value(), 0.02);
/// assert!(Ratio::new(1.5).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ratio(f64);

impl Ratio {
    /// The zero ratio.
    pub const ZERO: Ratio = Ratio(0.0);
    /// The unit ratio (always-on duty cycle, fully utilized channel).
    pub const ONE: Ratio = Ratio(1.0);

    /// Creates a ratio, returning `None` unless `0.0 <= value <= 1.0`
    /// and the value is finite.
    pub fn new(value: f64) -> Option<Ratio> {
        (value.is_finite() && (0.0..=1.0).contains(&value)).then_some(Ratio(value))
    }

    /// Creates a ratio, clamping the input into `[0, 1]`.
    ///
    /// Non-finite inputs clamp to zero.
    pub fn saturating(value: f64) -> Ratio {
        if value.is_finite() {
            Ratio(value.clamp(0.0, 1.0))
        } else if value == f64::INFINITY {
            Ratio(1.0)
        } else {
            Ratio(0.0)
        }
    }

    /// Returns the raw value in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the complementary ratio `1 - self`.
    ///
    /// ```
    /// use edmac_units::Ratio;
    /// assert_eq!(Ratio::new(0.25).unwrap().complement().value(), 0.75);
    /// ```
    pub fn complement(self) -> Ratio {
        Ratio(1.0 - self.0)
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}%", self.0 * 100.0)
    }
}

#[cfg(test)]
mod ratio_tests {
    use super::Ratio;

    #[test]
    fn new_accepts_unit_interval_only() {
        assert!(Ratio::new(0.0).is_some());
        assert!(Ratio::new(1.0).is_some());
        assert!(Ratio::new(-0.001).is_none());
        assert!(Ratio::new(1.001).is_none());
        assert!(Ratio::new(f64::NAN).is_none());
        assert!(Ratio::new(f64::INFINITY).is_none());
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Ratio::saturating(-3.0), Ratio::ZERO);
        assert_eq!(Ratio::saturating(42.0), Ratio::ONE);
        assert_eq!(Ratio::saturating(f64::INFINITY), Ratio::ONE);
        assert_eq!(Ratio::saturating(f64::NAN), Ratio::ZERO);
        assert_eq!(Ratio::saturating(0.5).value(), 0.5);
    }

    #[test]
    fn complement_is_involutive() {
        let r = Ratio::new(0.3).unwrap();
        assert!((r.complement().complement().value() - r.value()).abs() < 1e-12);
    }

    #[test]
    fn display_is_percentage() {
        assert_eq!(Ratio::new(0.0215).unwrap().to_string(), "2.150%");
    }
}
