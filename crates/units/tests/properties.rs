//! Property-based tests for the algebra of physical quantities.

use edmac_units::{BitsPerSecond, Bytes, Hertz, Joules, Ratio, Seconds, Watts};
use proptest::prelude::*;

/// Finite, moderately sized magnitudes; the algebra is linear so there is
/// no value in chasing subnormals here.
fn magnitude() -> impl Strategy<Value = f64> {
    -1e9..1e9f64
}

fn positive() -> impl Strategy<Value = f64> {
    1e-9..1e9f64
}

proptest! {
    #[test]
    fn seconds_addition_commutes(a in magnitude(), b in magnitude()) {
        let (x, y) = (Seconds::new(a), Seconds::new(b));
        prop_assert_eq!((x + y).value(), (y + x).value());
    }

    #[test]
    fn joules_sub_is_add_of_neg(a in magnitude(), b in magnitude()) {
        let (x, y) = (Joules::new(a), Joules::new(b));
        prop_assert_eq!((x - y).value(), (x + (-y)).value());
    }

    #[test]
    fn scalar_mul_distributes_over_add(a in magnitude(), b in magnitude(), k in -1e6..1e6f64) {
        let lhs = (Watts::new(a) + Watts::new(b)) * k;
        let rhs = Watts::new(a) * k + Watts::new(b) * k;
        // One rounding step apart at most.
        prop_assert!((lhs.value() - rhs.value()).abs() <= 1e-6 * (1.0 + lhs.value().abs()));
    }

    #[test]
    fn power_time_energy_round_trip(p in positive(), t in positive()) {
        let e = Watts::new(p) * Seconds::new(t);
        let p2 = e / Seconds::new(t);
        let t2 = e / Watts::new(p);
        prop_assert!((p2.value() - p).abs() <= 1e-9 * p.abs());
        prop_assert!((t2.value() - t).abs() <= 1e-9 * t.abs());
    }

    #[test]
    fn rate_period_round_trip(f in positive()) {
        let period = Hertz::new(f).period();
        prop_assert!((period.recip().value() - f).abs() <= 1e-9 * f);
    }

    #[test]
    fn like_ratio_is_scalar_quotient(a in positive(), b in positive()) {
        prop_assert_eq!(Seconds::new(a) / Seconds::new(b), a / b);
        prop_assert_eq!(Joules::new(a) / Joules::new(b), a / b);
    }

    #[test]
    fn airtime_scales_linearly_in_size(n in 0u32..4096, rate in 1e3..1e9f64) {
        let r = BitsPerSecond::new(rate);
        let one = r.airtime(Bytes::new(1)).value();
        let many = r.airtime(Bytes::new(n)).value();
        prop_assert!((many - one * n as f64).abs() <= 1e-9 * (1.0 + many.abs()));
    }

    #[test]
    fn ratio_saturating_always_in_unit_interval(x in any::<f64>()) {
        let r = Ratio::saturating(x);
        prop_assert!((0.0..=1.0).contains(&r.value()));
    }

    #[test]
    fn min_max_are_consistent_with_ordering(a in magnitude(), b in magnitude()) {
        let (x, y) = (Seconds::new(a), Seconds::new(b));
        let lo = x.min(y);
        let hi = x.max(y);
        prop_assert!(lo <= hi);
        prop_assert!(lo == x || lo == y);
        prop_assert!(hi == x || hi == y);
    }

    #[test]
    fn clamp_is_idempotent(a in magnitude(), lo in -1e6..0.0f64, hi in 0.0..1e6f64) {
        let clamped = Joules::new(a).clamp(Joules::new(lo), Joules::new(hi));
        let twice = clamped.clamp(Joules::new(lo), Joules::new(hi));
        prop_assert_eq!(clamped.value(), twice.value());
        prop_assert!(clamped.value() >= lo && clamped.value() <= hi);
    }

    #[test]
    fn sum_matches_fold(values in prop::collection::vec(magnitude(), 0..50)) {
        let total: Joules = values.iter().map(|&v| Joules::new(v)).sum();
        let folded = values
            .iter()
            .fold(Joules::ZERO, |acc, &v| acc + Joules::new(v));
        prop_assert!((total.value() - folded.value()).abs() <= 1e-6 * (1.0 + folded.value().abs()));
    }
}
