//! # edmac — game-theoretic energy–delay balancing for duty-cycled MACs
//!
//! A reproduction of Doudou, Barcelo-Ordinas, Djenouri, Garcia-Vidal and
//! Badache, *"Brief Announcement: Game Theoretical Approach for
//! Energy-Delay Balancing in Distributed Duty-Cycled MAC Protocols of
//! Wireless Networks"* (PODC 2014), built as a workspace of reusable
//! crates. This facade re-exports them:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`units`] | `edmac-units` | typed physical quantities |
//! | [`radio`] | `edmac-radio` | radio hardware models, energy ledger |
//! | [`net`] | `edmac-net` | ring/traffic model, topologies, routing trees |
//! | [`optim`] | `edmac-optim` | scalar/simplex solvers, penalty and barrier methods |
//! | [`phy`] | `edmac-phy` | channel models: unit-disk reference, SINR with shadowing and capture |
//! | [`game`] | `edmac-game` | Nash bargaining, Kalai–Smorodinsky, egalitarian |
//! | [`mac`] | `edmac-mac` | analytical X-MAC / DMAC / LMAC / SCP-MAC models |
//! | [`sim`] | `edmac-sim` | packet-level discrete-event simulator |
//! | [`proto`] | `edmac-proto` | the `ProtocolSuite` registry unifying model + simulator per protocol |
//! | [`core`] | `edmac-core` | the paper's framework: (P1), (P2), (P3)/(P4) |
//!
//! # Quickstart
//!
//! ```
//! use edmac::prelude::*;
//!
//! // Application requirements: a 60 mJ-per-epoch budget, 3 s delay bound.
//! let reqs = AppRequirements::new(Joules::new(0.06), Seconds::new(3.0))?;
//!
//! // Bargain over X-MAC's wake-up interval at the reference deployment.
//! let xmac = Xmac::default();
//! let report = TradeoffAnalysis::new(&xmac, &Deployment::reference(), reqs).bargain()?;
//!
//! println!("{report}");
//! assert!(report.e_star() <= 0.06 && report.l_star() <= 3.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub use edmac_core as core;
pub use edmac_game as game;
pub use edmac_mac as mac;
pub use edmac_net as net;
pub use edmac_optim as optim;
pub use edmac_phy as phy;
pub use edmac_proto as proto;
pub use edmac_radio as radio;
pub use edmac_sim as sim;
pub use edmac_units as units;

/// The most common imports, for `use edmac::prelude::*`.
pub mod prelude {
    pub use edmac_core::{
        lifetime, rank_protocols, AppRequirements, CoreError, OperatingPoint, RankedOutcome,
        RankingPolicy, TradeoffAnalysis, TradeoffReport,
    };
    pub use edmac_game::{BargainingPower, BargainingProblem, CostPoint};
    pub use edmac_mac::{
        all_models, BurstRegime, Deployment, Dmac, DmacParams, Lmac, LmacParams, MacModel,
        MacPerformance, Scp, ScpDual, ScpParams, Workload, Xmac, XmacParams,
    };
    pub use edmac_net::{RingModel, RingTraffic};
    pub use edmac_proto::{ProtocolRegistry, ProtocolSuite, PAPER_TRIO, STANDARD_PANEL};
    pub use edmac_radio::{EnergyBreakdown, FrameSizes, Radio};
    pub use edmac_sim::{
        DmacSim, LmacSim, ScpSim, SimConfig, SimProtocol, SimReport, Simulation, WakeMode, XmacSim,
    };
    pub use edmac_units::{Hertz, Joules, Seconds, Watts};
}
