#!/usr/bin/env python3
"""Compare a criterion JSONL run against the checked-in baseline.

Usage:
    bench_guard.py RUN_JSONL BASELINE_JSON            # guard mode
    bench_guard.py RUN_JSONL BASELINE_JSON --write-baseline

Guard mode prints a markdown regression table (also appended to
$GITHUB_STEP_SUMMARY when set) and exits non-zero if any benchmark's
mean exceeds its baseline by more than its *group's* tolerance. The
job that runs it stays non-blocking via `continue-on-error`; the exit
code just paints the row red so a human looks.

Baseline schema v2 replaces v1's flat band with per-group thresholds:
a benchmark's group is the id prefix before the first `/` (so
`registry/dispatch` is judged by `group_tolerances["registry"]`), and
`noise_floor_ns` adds an absolute allowance so nanosecond-scale
entries — where a relative band is all timer jitter — are judged
against `max(base * tolerance, noise_floor_ns)`. v1 baselines are
still accepted (flat band, zero floor).

`--write-baseline` rewrites BASELINE_JSON from the run instead —
the maintainer path for deliberate re-baselining (new hardware, new
toolchain, accepted perf change). It preserves the existing file's
group tolerances and noise floor, so a re-baseline never silently
drops the thresholds a human tuned.
"""

import json
import sys
from pathlib import Path

SCHEMA_V1 = "edmac-bench-baseline/v1"
SCHEMA_V2 = "edmac-bench-baseline/v2"
DEFAULT_TOLERANCE = 0.30
DEFAULT_NOISE_FLOOR_NS = 0

# Defaults written by --write-baseline when the existing file has no
# v2 thresholds to preserve. Rationale per group:
#   * registry/evaluate/concepts run in tens–hundreds of ns, where a
#     30% band is smaller than scheduler jitter — judged by a looser
#     band plus the absolute noise floor;
#   * cache I/O (key hashing, entry read/write with fsync) jitters
#     with filesystem state — looser band, same floor;
#   * fig/sim-style ms-scale entries are statistically stable — a
#     tighter band actually catches real regressions there.
DEFAULT_GROUP_TOLERANCES = {
    "registry": 0.60,
    "evaluate": 0.60,
    "concepts": 0.60,
    "cache": 0.60,
    "fig1": 0.25,
    "fig2": 0.25,
    "fig3": 0.25,
}


def read_run(path: Path) -> dict:
    """Latest mean per benchmark id from a JSON-lines run file."""
    means = {}
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        means[record["id"]] = int(record["mean_ns"])
    return means


def fmt_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def group_of(bench_id: str) -> str:
    return bench_id.split("/", 1)[0]


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    run_path, baseline_path = Path(args[0]), Path(args[1])
    run = read_run(run_path)

    if "--write-baseline" in sys.argv:
        group_tolerances = dict(DEFAULT_GROUP_TOLERANCES)
        tolerance = DEFAULT_TOLERANCE
        noise_floor = DEFAULT_NOISE_FLOOR_NS
        if baseline_path.exists():
            existing = json.loads(baseline_path.read_text())
            tolerance = float(existing.get("tolerance", tolerance))
            if existing.get("schema") == SCHEMA_V2:
                group_tolerances = existing.get("group_tolerances", group_tolerances)
                noise_floor = int(existing.get("noise_floor_ns", noise_floor))
        baseline = {
            "schema": SCHEMA_V2,
            "tolerance": tolerance,
            "noise_floor_ns": noise_floor,
            "group_tolerances": {k: group_tolerances[k] for k in sorted(group_tolerances)},
            "benches": {k: run[k] for k in sorted(run)},
        }
        baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"wrote {baseline_path} with {len(run)} benches")
        return 0

    baseline = json.loads(baseline_path.read_text())
    schema = baseline.get("schema")
    assert schema in (SCHEMA_V1, SCHEMA_V2), f"unexpected baseline schema: {schema}"
    tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    group_tolerances = (
        baseline.get("group_tolerances", {}) if schema == SCHEMA_V2 else {}
    )
    noise_floor = int(baseline.get("noise_floor_ns", 0)) if schema == SCHEMA_V2 else 0
    benches = baseline["benches"]

    rows = []
    regressions = []
    for bench_id in sorted(set(run) | set(benches)):
        tol = float(group_tolerances.get(group_of(bench_id), tolerance))
        if bench_id not in benches:
            rows.append((bench_id, "-", fmt_ns(run[bench_id]), "new", "🆕"))
            continue
        if bench_id not in run:
            rows.append((bench_id, fmt_ns(benches[bench_id]), "-", "missing", "⚠️"))
            continue
        base, now = benches[bench_id], run[bench_id]
        delta = (now - base) / base
        # The band is relative per group, but never narrower than the
        # absolute noise floor: at ns scale, a percentage is jitter.
        allowed_ns = max(base * tol, noise_floor)
        status = f"ok (±{tol:.0%})"
        icon = "✅"
        if now - base > allowed_ns:
            status, icon = f"REGRESSION (>{tol:.0%})", "❌"
            regressions.append(bench_id)
        elif base - now > allowed_ns:
            status, icon = "improved", "🚀"
        rows.append((bench_id, fmt_ns(base), fmt_ns(now), f"{delta:+.1%}", icon + " " + status))

    lines = [
        f"### bench-guard (default ±{tolerance:.0%}, "
        f"noise floor {fmt_ns(noise_floor)}, per-group overrides: "
        + (
            ", ".join(f"{g} ±{t:.0%}" for g, t in sorted(group_tolerances.items()))
            if group_tolerances
            else "none"
        )
        + ")",
        "",
        "| benchmark | baseline | now | delta | status |",
        "|---|---|---|---|---|",
    ]
    lines += [f"| {r[0]} | {r[1]} | {r[2]} | {r[3]} | {r[4]} |" for r in rows]
    if regressions:
        lines += ["", f"**{len(regressions)} regression(s):** " + ", ".join(regressions)]
    else:
        lines += ["", "No regressions beyond tolerance."]
    report = "\n".join(lines)
    print(report)

    import os

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as fh:
            fh.write(report + "\n")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
