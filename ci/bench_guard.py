#!/usr/bin/env python3
"""Compare a criterion JSONL run against the checked-in baseline.

Usage:
    bench_guard.py RUN_JSONL BASELINE_JSON            # guard mode
    bench_guard.py RUN_JSONL BASELINE_JSON --write-baseline

Guard mode prints a markdown regression table (also appended to
$GITHUB_STEP_SUMMARY when set) and exits non-zero if any benchmark's
mean exceeds its baseline by more than the baseline's tolerance. The
job that runs it stays non-blocking via `continue-on-error`; the exit
code just paints the row red so a human looks.

`--write-baseline` rewrites BASELINE_JSON from the run instead —
the maintainer path for deliberate re-baselining (new hardware, new
toolchain, accepted perf change).
"""

import json
import sys
from pathlib import Path

SCHEMA = "edmac-bench-baseline/v1"
DEFAULT_TOLERANCE = 0.30


def read_run(path: Path) -> dict:
    """Latest mean per benchmark id from a JSON-lines run file."""
    means = {}
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        means[record["id"]] = int(record["mean_ns"])
    return means


def fmt_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    run_path, baseline_path = Path(args[0]), Path(args[1])
    run = read_run(run_path)

    if "--write-baseline" in sys.argv:
        baseline = {
            "schema": SCHEMA,
            "tolerance": DEFAULT_TOLERANCE,
            "benches": {k: run[k] for k in sorted(run)},
        }
        baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"wrote {baseline_path} with {len(run)} benches")
        return 0

    baseline = json.loads(baseline_path.read_text())
    assert baseline.get("schema") == SCHEMA, f"unexpected baseline schema: {baseline.get('schema')}"
    tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    benches = baseline["benches"]

    rows = []
    regressions = []
    for bench_id in sorted(set(run) | set(benches)):
        if bench_id not in benches:
            rows.append((bench_id, "-", fmt_ns(run[bench_id]), "new", "🆕"))
            continue
        if bench_id not in run:
            rows.append((bench_id, fmt_ns(benches[bench_id]), "-", "missing", "⚠️"))
            continue
        base, now = benches[bench_id], run[bench_id]
        delta = (now - base) / base
        status = "ok"
        icon = "✅"
        if delta > tolerance:
            status, icon = "REGRESSION", "❌"
            regressions.append(bench_id)
        elif delta < -tolerance:
            status, icon = "improved", "🚀"
        rows.append((bench_id, fmt_ns(base), fmt_ns(now), f"{delta:+.1%}", icon + " " + status))

    lines = [
        f"### bench-guard (tolerance ±{tolerance:.0%})",
        "",
        "| benchmark | baseline | now | delta | status |",
        "|---|---|---|---|---|",
    ]
    lines += [f"| {r[0]} | {r[1]} | {r[2]} | {r[3]} | {r[4]} |" for r in rows]
    if regressions:
        lines += ["", f"**{len(regressions)} regression(s):** " + ", ".join(regressions)]
    else:
        lines += ["", "No regressions beyond tolerance."]
    report = "\n".join(lines)
    print(report)

    import os

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as fh:
            fh.write(report + "\n")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
