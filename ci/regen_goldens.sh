#!/usr/bin/env bash
# Rebuild every checked-in scientific artifact in one command:
#
#   ci/regen_goldens.sh            # goldens only
#   ci/regen_goldens.sh --bench    # goldens + BENCH_BASELINE.json
#
# The study smoke grid and the four figure binaries are deterministic
# (fixed seeds), so `ci/golden/` is reproducible bit for bit; rerun this
# after any deliberate change to model formulas, grid axes, or artifact
# schemas, and review the diff like code. `--bench` additionally reruns
# the criterion quick profile and rewrites `ci/BENCH_BASELINE.json`
# (hardware-dependent — re-baseline on the machine class CI uses, or
# accept the ±30% guard band absorbing the difference).
#
# Cache discipline: a golden regeneration means cell outcomes changed,
# so any study cache populated before the change is stale *in meaning*.
# If the change altered a formula without touching scenario parameters,
# the content-addressed keys do NOT move on their own — you must bump
# the matching schema version (CELLS_SCHEMA_VERSION /
# VALIDATION_SCHEMA_VERSION / MODEL_SCHEMA_VERSION in crates/study/src)
# so old entries miss. The purge below clears the local default cache
# dir either way; CI's cache key embeds the schema tuple, so the bump
# is also what rolls the workflow cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== building release binaries"
cargo build --release -p edmac-bench --bins

echo "== purging local study cache (outcomes are being redefined)"
rm -rf .study-cache

echo "== study smoke grid -> ci/golden/"
cargo run --release --bin study -- --smoke --out ci/golden
# The runner records a manifest next to its artifacts; goldens are the
# three study artifacts only (manifests describe a *run*, not results).
rm -f ci/golden/manifest.json

echo "== artifact schema tags"
head -1 ci/golden/study_cells.csv | grep -F "edmac-study/cells/v2"
head -1 ci/golden/study_validation.csv | grep -F "edmac-study/validation/v2"
grep -F '"schema": "edmac-study/summary/v2"' ci/golden/study_summary.json

echo "== coexistence smoke -> ci/golden/"
# Two networks (X-MAC, LMAC) on one shared SINR channel; shard count is
# byte-invariant, so CI may rerun this with --shards 2 and still diff
# clean.
cargo run --release --bin study -- coexistence --smoke --out ci/golden
head -1 ci/golden/coexistence_cells.csv | grep -F "edmac-study/coexistence/v1"
grep -F '"schema": "edmac-study/coexistence/v1"' ci/golden/coexistence_summary.json

echo "== figure binaries -> ci/golden/"
for fig in fig1 fig2 fairness sim_validation; do
  cargo run --release --bin "$fig" > "ci/golden/$fig.csv"
done

if [[ "${1:-}" == "--bench" ]]; then
  echo "== criterion quick profile -> ci/BENCH_BASELINE.json"
  rm -f target/bench.jsonl
  CRITERION_SAMPLE_SIZE=5 CRITERION_JSON="$PWD/target/bench.jsonl" \
    cargo bench --workspace
  python3 ci/bench_guard.py target/bench.jsonl ci/BENCH_BASELINE.json --write-baseline
fi

echo "== done; review with: git diff ci/"
